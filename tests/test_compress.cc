// Tests for the Ligra+-style compressed graph (DESIGN.md S11): varint and
// zigzag primitives, compression round-trips, decode equivalence with the
// plain CSR, space savings, and edge_map interchangeability.
#include "compress/compressed_graph.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"
#include "ligra/edge_map.h"
#include "parallel/atomics.h"

using namespace ligra;
using compress::compressed_graph;

TEST(Varint, EncodeDecodeRoundTrip) {
  std::vector<uint64_t> values = {0,   1,    127,        128,
                                  300, 16383, 16384,     (1ull << 32) - 1,
                                  1ull << 32, ~uint64_t{0}};
  std::vector<uint8_t> buf;
  for (uint64_t v : values) compress::varint_encode(buf, v);
  size_t pos = 0;
  for (uint64_t v : values)
    EXPECT_EQ(compress::varint_decode(buf.data(), pos), v);
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint, SmallValuesAreOneByte) {
  std::vector<uint8_t> buf;
  compress::varint_encode(buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  compress::varint_encode(buf, 128);
  EXPECT_EQ(buf.size(), 3u);  // second value took two bytes
}

TEST(Zigzag, RoundTripsSignedValues) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{12345},
                    int64_t{-12345}, std::numeric_limits<int64_t>::max(),
                    std::numeric_limits<int64_t>::min()}) {
    EXPECT_EQ(compress::zigzag_decode(compress::zigzag_encode(v)), v);
  }
  // Small magnitudes map to small codes (the property that makes the
  // first-neighbor delta cheap).
  EXPECT_LE(compress::zigzag_encode(-3), 6u);
}

TEST(Compress, RoundTripSymmetric) {
  auto g = gen::rmat_graph(10, 1 << 13, 3);
  auto cg = compressed_graph::from_graph(g);
  EXPECT_EQ(cg.num_vertices(), g.num_vertices());
  EXPECT_EQ(cg.num_edges(), g.num_edges());
  EXPECT_TRUE(cg.symmetric());
  EXPECT_EQ(cg.to_graph(), g);
}

TEST(Compress, RoundTripDirected) {
  auto g = gen::rmat_digraph(10, 1 << 13, 4);
  auto cg = compressed_graph::from_graph(g);
  EXPECT_FALSE(cg.symmetric());
  EXPECT_EQ(cg.to_graph(), g);
}

TEST(Compress, DegreesMatch) {
  auto g = gen::random_graph(2000, 8, 5);
  auto cg = compressed_graph::from_graph(g);
  for (vertex_id v = 0; v < g.num_vertices(); v++) {
    ASSERT_EQ(cg.out_degree(v), g.out_degree(v));
    ASSERT_EQ(cg.in_degree(v), g.in_degree(v));
  }
}

TEST(Compress, DecodeOutMatchesPlainAdjacency) {
  auto g = gen::rmat_graph(9, 1 << 12, 6);
  auto cg = compressed_graph::from_graph(g);
  for (vertex_id v = 0; v < g.num_vertices(); v++) {
    auto expect = g.out_neighbors(v);
    std::vector<vertex_id> got;
    cg.decode_out(v, [&](vertex_id u, empty_weight, size_t j) {
      EXPECT_EQ(j, got.size());
      got.push_back(u);
      return true;
    });
    ASSERT_EQ(got.size(), expect.size());
    for (size_t j = 0; j < got.size(); j++) ASSERT_EQ(got[j], expect[j]);
  }
}

TEST(Compress, DecodeEarlyExitStops) {
  auto g = gen::star_graph(100);
  auto cg = compressed_graph::from_graph(g);
  size_t calls = 0;
  cg.decode_out(0, [&](vertex_id, empty_weight, size_t) {
    calls++;
    return calls < 5;
  });
  EXPECT_EQ(calls, 5u);
}

TEST(Compress, SavesSpaceOnLocalGraphs) {
  // randLocal has short gaps: payload must be well under the 4 bytes/edge
  // of the uncompressed edge array (the Ligra+ headline).
  auto g = gen::random_local_graph(1 << 15, 10, 7);
  auto cg = compressed_graph::from_graph(g);
  double bytes_per_edge =
      static_cast<double>(cg.edge_payload_bytes()) / g.num_edges();
  EXPECT_LT(bytes_per_edge, 3.0);
  EXPECT_LT(cg.memory_bytes(), g.memory_bytes());
}

TEST(Compress, EmptyAndSingletonGraphs) {
  auto g0 = graph::from_edges(0, {}, {.symmetrize = true});
  auto cg0 = compressed_graph::from_graph(g0);
  EXPECT_EQ(cg0.num_vertices(), 0u);
  EXPECT_EQ(cg0.to_graph(), g0);

  auto g1 = graph::from_edges(5, {}, {.symmetrize = true});
  auto cg1 = compressed_graph::from_graph(g1);
  EXPECT_EQ(cg1.to_graph(), g1);
}

namespace {

struct mark_f {
  uint8_t* marked;
  bool update(vertex_id, vertex_id v) const {
    if (!marked[v]) {
      marked[v] = 1;
      return true;
    }
    return false;
  }
  bool update_atomic(vertex_id, vertex_id v) const {
    return compare_and_swap(&marked[v], uint8_t{0}, uint8_t{1});
  }
  bool cond(vertex_id v) const { return atomic_load(&marked[v]) == 0; }
};

}  // namespace

TEST(CompressWeighted, RoundTripSymmetric) {
  auto g = gen::add_random_weights(gen::rmat_graph(9, 1 << 12, 3), 1, 1000, 5);
  auto cg = compress::compressed_wgraph::from_graph(g);
  EXPECT_EQ(cg.num_edges(), g.num_edges());
  EXPECT_EQ(cg.to_graph(), g);
}

TEST(CompressWeighted, RoundTripDirectedWithNegativeWeights) {
  auto base = gen::rmat_digraph(9, 1 << 12, 4);
  auto g = gen::add_random_weights(base, -50, 50, 6);
  auto cg = compress::compressed_wgraph::from_graph(g);
  EXPECT_FALSE(cg.symmetric());
  EXPECT_EQ(cg.to_graph(), g);
}

TEST(CompressWeighted, DecodePassesWeights) {
  std::vector<weighted_edge> edges = {{0, 1, 7}, {0, 3, -2}, {2, 0, 9}};
  auto g = wgraph::from_edges(4, edges, {});
  auto cg = compress::compressed_wgraph::from_graph(g);
  std::vector<std::pair<vertex_id, int32_t>> got;
  cg.decode_out(0, [&](vertex_id v, int32_t w, size_t) {
    got.emplace_back(v, w);
    return true;
  });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::pair<vertex_id, int32_t>{1, 7}));
  EXPECT_EQ(got[1], (std::pair<vertex_id, int32_t>{3, -2}));
  // In-edge of 0 carries weight 9 from source 2.
  std::vector<std::pair<vertex_id, int32_t>> in;
  cg.decode_in(0, [&](vertex_id v, int32_t w, size_t) {
    in.emplace_back(v, w);
    return true;
  });
  ASSERT_EQ(in.size(), 1u);
  EXPECT_EQ(in[0], (std::pair<vertex_id, int32_t>{2, 9}));
}

TEST(CompressWeighted, EdgeMapBellmanFordMatchesPlain) {
  // Frontier relaxation over the compressed weighted graph must produce
  // the same distances as over the plain CSR.
  auto g = gen::add_random_weights(gen::rmat_graph(10, 1 << 13, 8), 1, 20, 9);
  auto cg = compress::compressed_wgraph::from_graph(g);
  struct bf_f {
    int64_t* dist;
    uint8_t* visited;
    bool relax(vertex_id u, vertex_id v, int32_t w) const {
      int64_t nd = atomic_load(&dist[u]) + w;
      if (write_min(&dist[v], nd))
        return compare_and_swap(&visited[v], uint8_t{0}, uint8_t{1});
      return false;
    }
    bool update(vertex_id u, vertex_id v, int32_t w) const {
      return relax(u, v, w);
    }
    bool update_atomic(vertex_id u, vertex_id v, int32_t w) const {
      return relax(u, v, w);
    }
    bool cond(vertex_id) const { return true; }
  };
  auto run = [&](const auto& graph_like) {
    const vertex_id n = graph_like.num_vertices();
    std::vector<int64_t> dist(n, std::numeric_limits<int64_t>::max() / 4);
    std::vector<uint8_t> visited(n, 0);
    dist[0] = 0;
    vertex_subset frontier(n, vertex_id{0});
    while (!frontier.empty()) {
      vertex_subset next =
          edge_map(graph_like, frontier, bf_f{dist.data(), visited.data()});
      next.for_each([&](vertex_id v) { visited[v] = 0; });
      frontier = std::move(next);
    }
    return dist;
  };
  EXPECT_EQ(run(g), run(cg));
}

TEST(Compress, EdgeMapBfsMatchesUncompressed) {
  // Full BFS via edge_map on plain vs compressed graphs: identical
  // frontier sizes every round, across strategies.
  auto g = gen::rmat_graph(11, 1 << 14, 8);
  auto cg = compressed_graph::from_graph(g);
  for (traversal t : {traversal::sparse, traversal::dense,
                      traversal::automatic}) {
    std::vector<uint8_t> m1(g.num_vertices(), 0), m2(g.num_vertices(), 0);
    m1[0] = m2[0] = 1;
    vertex_subset f1(g.num_vertices(), vertex_id{0});
    vertex_subset f2(g.num_vertices(), vertex_id{0});
    edge_map_options opts;
    opts.strategy = t;
    while (!f1.empty() || !f2.empty()) {
      f1 = edge_map(g, f1, mark_f{m1.data()}, opts);
      f2 = edge_map(cg, f2, mark_f{m2.data()}, opts);
      ASSERT_EQ(f1.size(), f2.size()) << traversal_name(t);
      ASSERT_EQ(f1.to_sorted_vector(), f2.to_sorted_vector());
    }
    EXPECT_EQ(m1, m2);
  }
}

// Tests for vertex_subset (DESIGN.md S7): construction, sparse<->dense
// conversion fidelity, membership, iteration, and degree sums.
#include "ligra/vertex_subset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "graph/generators.h"
#include "util/rng.h"

using namespace ligra;

TEST(VertexSubset, EmptySubset) {
  vertex_subset vs(10);
  EXPECT_EQ(vs.universe_size(), 10u);
  EXPECT_EQ(vs.size(), 0u);
  EXPECT_TRUE(vs.empty());
  EXPECT_FALSE(vs.contains(3));
}

TEST(VertexSubset, Singleton) {
  vertex_subset vs(10, vertex_id{7});
  EXPECT_EQ(vs.size(), 1u);
  EXPECT_TRUE(vs.contains(7));
  EXPECT_FALSE(vs.contains(6));
  EXPECT_THROW(vertex_subset(10, vertex_id{10}), std::invalid_argument);
}

TEST(VertexSubset, FromIdList) {
  vertex_subset vs(10, std::vector<vertex_id>{2, 5, 9});
  EXPECT_EQ(vs.size(), 3u);
  EXPECT_FALSE(vs.is_dense());
  EXPECT_TRUE(vs.contains(2));
  EXPECT_TRUE(vs.contains(9));
  EXPECT_FALSE(vs.contains(0));
}

TEST(VertexSubset, FromDense) {
  std::vector<uint8_t> flags = {1, 0, 0, 1, 1};
  auto vs = vertex_subset::from_dense(5, flags);
  EXPECT_EQ(vs.size(), 3u);
  EXPECT_TRUE(vs.is_dense());
  EXPECT_TRUE(vs.contains(0));
  EXPECT_FALSE(vs.contains(1));
  EXPECT_THROW(vertex_subset::from_dense(4, flags), std::invalid_argument);
}

TEST(VertexSubset, AllSubset) {
  auto vs = vertex_subset::all(6);
  EXPECT_EQ(vs.size(), 6u);
  for (vertex_id v = 0; v < 6; v++) EXPECT_TRUE(vs.contains(v));
}

TEST(VertexSubset, SparseToDenseAndBack) {
  vertex_subset vs(100, std::vector<vertex_id>{10, 20, 30});
  vs.to_dense();
  EXPECT_TRUE(vs.is_dense());
  EXPECT_EQ(vs.size(), 3u);
  EXPECT_TRUE(vs.contains(20));
  vs.to_sparse();
  EXPECT_FALSE(vs.is_dense());
  EXPECT_EQ(vs.size(), 3u);
  auto ids = vs.to_sorted_vector();
  EXPECT_EQ(ids, (std::vector<vertex_id>{10, 20, 30}));
}

TEST(VertexSubset, ConversionsAreIdempotent) {
  vertex_subset vs(50, std::vector<vertex_id>{1, 2, 3});
  vs.to_sparse();  // already sparse: no-op
  EXPECT_EQ(vs.size(), 3u);
  vs.to_dense();
  vs.to_dense();  // already dense: no-op
  EXPECT_EQ(vs.size(), 3u);
}

TEST(VertexSubset, ForEachVisitsExactlyMembers) {
  const vertex_id n = 1000;
  std::vector<vertex_id> ids;
  for (vertex_id v = 0; v < n; v += 7) ids.push_back(v);
  vertex_subset vs(n, ids);

  for (int pass = 0; pass < 2; pass++) {
    std::vector<std::atomic<int>> hits(n);
    vs.for_each([&](vertex_id v) { hits[v].fetch_add(1); });
    for (vertex_id v = 0; v < n; v++) {
      ASSERT_EQ(hits[v].load(), v % 7 == 0 ? 1 : 0) << "vertex " << v;
    }
    vs.to_dense();  // second pass exercises the dense path
  }
}

TEST(VertexSubset, ToSortedVectorFromUnsortedSparse) {
  vertex_subset vs(10, std::vector<vertex_id>{9, 1, 5});
  EXPECT_EQ(vs.to_sorted_vector(), (std::vector<vertex_id>{1, 5, 9}));
}

TEST(VertexSubset, OutDegreeSumMatchesManualSum) {
  auto g = gen::rmat_graph(10, 1 << 12, 3);
  std::vector<vertex_id> ids = {0, 5, 100, 500};
  vertex_subset vs(g.num_vertices(), ids);
  edge_id expect = 0;
  for (vertex_id v : ids) expect += g.out_degree(v);
  EXPECT_EQ(vs.out_degree_sum(g), expect);
  vs.to_dense();
  EXPECT_EQ(vs.out_degree_sum(g), expect);
}

TEST(VertexSubset, LargeRandomConversionFidelity) {
  const vertex_id n = 100000;
  std::vector<uint8_t> flags(n, 0);
  for (vertex_id v = 0; v < n; v++) flags[v] = (hash64(v) % 5 == 0) ? 1 : 0;
  auto vs = vertex_subset::from_dense(n, flags);
  size_t m = vs.size();
  vs.to_sparse();
  EXPECT_EQ(vs.size(), m);
  vs.to_dense();
  EXPECT_EQ(vs.size(), m);
  const auto& back = vs.dense();
  for (vertex_id v = 0; v < n; v++) ASSERT_EQ(back[v], flags[v]);
}

TEST(VertexSubset, EmptyUniverse) {
  vertex_subset vs(0);
  EXPECT_TRUE(vs.empty());
  vs.to_dense();
  vs.to_sparse();
  EXPECT_EQ(vs.size(), 0u);
}

// Tests for maximal independent set: independence + maximality invariants
// on random graphs, exact agreement with the greedy sequential algorithm
// under the same priorities (the determinism claim of the SPAA'12 line of
// work), and edge cases.
#include "apps/mis.h"

#include <gtest/gtest.h>

#include "baseline/serial.h"
#include "graph/generators.h"
#include "util/rng.h"

using namespace ligra;

namespace {

void expect_independent_and_maximal(const graph& g,
                                    const std::vector<uint8_t>& in_set) {
  // Independence: no edge inside the set. Maximality: every vertex outside
  // has a neighbor inside.
  for (vertex_id v = 0; v < g.num_vertices(); v++) {
    if (in_set[v]) {
      for (vertex_id u : g.out_neighbors(v))
        ASSERT_FALSE(in_set[u]) << "edge " << v << "-" << u << " inside set";
    } else {
      bool covered = false;
      for (vertex_id u : g.out_neighbors(v)) covered |= (in_set[u] != 0);
      ASSERT_TRUE(covered) << "vertex " << v << " could be added";
    }
  }
}

// The priority function apps::maximal_independent_set uses internally.
std::vector<uint64_t> priorities(vertex_id n, uint64_t seed) {
  rng r(seed);
  std::vector<uint64_t> p(n);
  for (vertex_id v = 0; v < n; v++)
    p[v] = (r[v] & ~uint64_t{0xffffffff}) | v;
  return p;
}

}  // namespace

class MisSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MisSeeds, IndependentAndMaximalOnRmat) {
  uint64_t seed = GetParam();
  auto g = gen::rmat_graph(10, 1 << 13, seed);
  auto result = apps::maximal_independent_set(g, seed);
  expect_independent_and_maximal(g, result.in_set);
  EXPECT_GT(result.set_size, 0u);
}

TEST_P(MisSeeds, MatchesGreedySequentialWithSamePriorities) {
  uint64_t seed = GetParam();
  auto g = gen::random_graph(2000, 8, seed);
  auto par = apps::maximal_independent_set(g, seed);
  auto ser = baseline::greedy_mis(g, priorities(g.num_vertices(), seed));
  EXPECT_EQ(par.in_set, ser);
}

TEST_P(MisSeeds, DeterministicAcrossRuns) {
  uint64_t seed = GetParam();
  auto g = gen::rmat_graph(9, 1 << 12, seed + 5);
  auto a = apps::maximal_independent_set(g, 7);
  auto b = apps::maximal_independent_set(g, 7);
  EXPECT_EQ(a.in_set, b.in_set);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MisSeeds, ::testing::Values(1, 2, 3, 4, 5));

TEST(Mis, EdgelessGraphTakesEverything) {
  auto g = graph::from_edges(10, {}, {.symmetrize = true});
  auto result = apps::maximal_independent_set(g);
  EXPECT_EQ(result.set_size, 10u);
}

TEST(Mis, CompleteGraphTakesExactlyOne) {
  auto g = gen::complete_graph(20);
  auto result = apps::maximal_independent_set(g);
  EXPECT_EQ(result.set_size, 1u);
  expect_independent_and_maximal(g, result.in_set);
}

TEST(Mis, StarTakesLeavesOrCenter) {
  auto g = gen::star_graph(30);
  auto result = apps::maximal_independent_set(g);
  expect_independent_and_maximal(g, result.in_set);
  // Either the center alone or all 29 leaves.
  EXPECT_TRUE(result.set_size == 1 || result.set_size == 29);
}

TEST(Mis, PathAlternates) {
  auto g = gen::path_graph(50);
  auto result = apps::maximal_independent_set(g, 3);
  expect_independent_and_maximal(g, result.in_set);
  EXPECT_GE(result.set_size, 17u);  // MIS of a path is >= ceil(n/3)
}

TEST(Mis, RequiresSymmetric) {
  auto g = gen::rmat_digraph(8, 1 << 9, 1);
  EXPECT_THROW(apps::maximal_independent_set(g), std::invalid_argument);
}

TEST(Mis, RoundCountIsLogarithmicish) {
  // The SPAA'12 result: O(log n) rounds w.h.p. Sanity-bound generously.
  auto g = gen::random_graph(1 << 14, 10, 4);
  auto result = apps::maximal_independent_set(g, 2);
  EXPECT_LE(result.num_rounds, 60u);
}

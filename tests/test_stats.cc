// Tests for graph statistics/validation helpers and the edge_map
// reduce/count API.
#include "graph/stats.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "ligra/edge_map.h"

using namespace ligra;

TEST(Stats, DegreeStatsOnKnownGraphs) {
  auto star = gen::star_graph(10);
  auto s = compute_degree_stats(star);
  EXPECT_EQ(s.max_degree, 9u);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.isolated_vertices, 0u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 18.0 / 10);

  auto g = graph::from_edges(5, {{0, 1}}, {.symmetrize = true});
  auto s2 = compute_degree_stats(g);
  EXPECT_EQ(s2.isolated_vertices, 3u);
  EXPECT_EQ(s2.min_degree, 0u);
}

TEST(Stats, EmptyGraphStats) {
  graph g;
  auto s = compute_degree_stats(g);
  EXPECT_EQ(s.max_degree, 0u);
  EXPECT_EQ(s.isolated_vertices, 0u);
}

TEST(Stats, SymmetryDetection) {
  EXPECT_TRUE(edges_are_symmetric(gen::cycle_graph(10)));
  // A directed rMat is (almost surely) not edge-symmetric.
  EXPECT_FALSE(edges_are_symmetric(gen::rmat_digraph(10, 1 << 12, 1)));
  // A hand-built directed graph whose edge set happens to be symmetric.
  auto g = graph::from_edges(2, {{0, 1}, {1, 0}}, {});
  EXPECT_FALSE(g.symmetric());       // built as directed...
  EXPECT_TRUE(edges_are_symmetric(g));  // ...but structurally symmetric
}

TEST(Stats, SelfLoopDetection) {
  EXPECT_TRUE(has_no_self_loops(gen::cycle_graph(5)));
  auto g = graph::from_edges(3, {{0, 0}, {1, 2}}, {.remove_self_loops = false});
  EXPECT_FALSE(has_no_self_loops(g));
}

TEST(Stats, ValidateAcceptsBuiltGraphs) {
  EXPECT_TRUE(validate_graph(gen::rmat_graph(10, 1 << 12, 1)));
  EXPECT_TRUE(validate_graph(gen::rmat_digraph(10, 1 << 12, 2)));
  EXPECT_TRUE(validate_graph(gen::add_random_weights(gen::grid3d_graph(5), 1, 9)));
  EXPECT_TRUE(validate_graph(graph{}));
}

// --- edge_map_reduce / edge_map_count ----------------------------------------

TEST(EdgeMapReduce, CountsFrontierEdges) {
  auto g = gen::cycle_graph(100);
  vertex_subset some(100, std::vector<vertex_id>{0, 10, 20});
  // Every vertex has out-degree 2.
  auto total = edge_map_count(
      g, some, [](vertex_id, vertex_id, empty_weight) { return true; });
  EXPECT_EQ(total, 6u);
}

TEST(EdgeMapReduce, SumsWeights) {
  std::vector<weighted_edge> edges = {{0, 1, 3}, {0, 2, 4}, {1, 2, 5}};
  auto g = wgraph::from_edges(3, edges, {});
  vertex_subset frontier(3, std::vector<vertex_id>{0, 1});
  int64_t sum = edge_map_reduce(
      g, frontier,
      [](vertex_id, vertex_id, int32_t w) { return static_cast<int64_t>(w); },
      int64_t{0}, [](int64_t a, int64_t b) { return a + b; });
  EXPECT_EQ(sum, 12);  // 3 + 4 + 5
}

TEST(EdgeMapReduce, DenseAndSparseAgree) {
  auto g = gen::rmat_graph(10, 1 << 12, 5);
  std::vector<vertex_id> ids;
  for (vertex_id v = 0; v < g.num_vertices(); v += 3) ids.push_back(v);
  vertex_subset sparse(g.num_vertices(), ids);
  vertex_subset dense(g.num_vertices(), ids);
  dense.to_dense();
  auto pred = [](vertex_id u, vertex_id v, empty_weight) { return u < v; };
  EXPECT_EQ(edge_map_count(g, sparse, pred), edge_map_count(g, dense, pred));
}

TEST(EdgeMapReduce, CutEdgesOfAPartition) {
  // Count edges crossing an even/odd vertex partition on a cycle: all of
  // them for even n.
  auto g = gen::cycle_graph(50);
  vertex_subset all = vertex_subset::all(50);
  auto cut = edge_map_count(g, all, [](vertex_id u, vertex_id v, empty_weight) {
    return (u % 2) != (v % 2);
  });
  EXPECT_EQ(cut, g.num_edges());
}

TEST(EdgeMapReduce, MismatchedUniverseThrows) {
  auto g = gen::cycle_graph(10);
  vertex_subset wrong(5, vertex_id{0});
  EXPECT_THROW(edge_map_count(
                   g, wrong, [](vertex_id, vertex_id, empty_weight) { return true; }),
               std::invalid_argument);
}

TEST(EdgeMapReduce, EmptyFrontierIsIdentity) {
  auto g = gen::cycle_graph(10);
  vertex_subset empty(10);
  EXPECT_EQ(edge_map_count(
                g, empty, [](vertex_id, vertex_id, empty_weight) { return true; }),
            0u);
}

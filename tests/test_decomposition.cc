// Tests for low-diameter decomposition and decomposition-based
// connectivity (SPAA'14 extension): partition validity (clusters are
// connected, every vertex assigned), the beta cut-fraction property
// (statistical), and CC agreement with union-find.
#include "apps/decomposition.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "baseline/serial.h"
#include "graph/generators.h"

using namespace ligra;

namespace {

// Every cluster must induce a connected subgraph containing its center.
void expect_clusters_connected(const graph& g,
                               const std::vector<vertex_id>& cluster) {
  const vertex_id n = g.num_vertices();
  // BFS within each cluster from its center.
  std::vector<uint8_t> reached(n, 0);
  std::vector<vertex_id> stack;
  for (vertex_id c = 0; c < n; c++) {
    if (cluster[c] != c) continue;  // not a center
    stack.assign(1, c);
    reached[c] = 1;
    while (!stack.empty()) {
      vertex_id u = stack.back();
      stack.pop_back();
      for (vertex_id v : g.out_neighbors(u)) {
        if (!reached[v] && cluster[v] == cluster[u]) {
          reached[v] = 1;
          stack.push_back(v);
        }
      }
    }
  }
  for (vertex_id v = 0; v < n; v++)
    ASSERT_TRUE(reached[v]) << "vertex " << v
                            << " disconnected from its cluster center "
                            << cluster[v];
}

}  // namespace

class DecompSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecompSeeds, EveryVertexAssignedAndCentersValid) {
  uint64_t seed = GetParam();
  auto g = gen::rmat_graph(10, 1 << 13, seed);
  auto d = apps::decompose(g, 0.2, seed);
  size_t centers = 0;
  for (vertex_id v = 0; v < g.num_vertices(); v++) {
    ASSERT_NE(d.cluster[v], kNoVertex) << "vertex " << v << " unassigned";
    ASSERT_LT(d.cluster[v], g.num_vertices());
    // A cluster id must itself be a center (cluster[c] == c).
    ASSERT_EQ(d.cluster[d.cluster[v]], d.cluster[v]);
    if (d.cluster[v] == v) centers++;
  }
  EXPECT_EQ(centers, d.num_clusters);
}

TEST_P(DecompSeeds, ClustersAreConnected) {
  uint64_t seed = GetParam();
  auto g = gen::random_graph(2000, 5, seed);
  auto d = apps::decompose(g, 0.3, seed + 1);
  expect_clusters_connected(g, d.cluster);
}

TEST_P(DecompSeeds, CcMatchesUnionFind) {
  uint64_t seed = GetParam();
  auto g = gen::rmat_graph(10, 1 << 12, seed);  // sparse: many components
  auto result = apps::connected_components_decomposition(g, 0.2, seed);
  auto expect = baseline::connected_components(g);
  // Labels are representatives, not minima: compare the partitions.
  std::map<vertex_id, vertex_id> canon;
  for (vertex_id v = 0; v < g.num_vertices(); v++) {
    auto [it, inserted] = canon.emplace(result.labels[v], expect[v]);
    ASSERT_EQ(it->second, expect[v]) << "partition mismatch at " << v;
  }
  // Counts agree too.
  std::set<vertex_id> expected_roots(expect.begin(), expect.end());
  EXPECT_EQ(result.num_components, expected_roots.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecompSeeds, ::testing::Values(1, 2, 3, 4, 5));

TEST(Decomposition, SmallBetaCutsFewEdges) {
  // Cut fraction concentrates around beta; assert a generous upper bound.
  auto g = gen::random_graph(1 << 14, 10, 3);
  auto d = apps::decompose(g, 0.1, 1);
  double cut_fraction =
      static_cast<double>(d.cut_edges) / static_cast<double>(g.num_edges());
  EXPECT_LT(cut_fraction, 0.3);
  EXPECT_GT(d.num_clusters, 1u);
}

TEST(Decomposition, LargerBetaGivesMoreClusters) {
  auto g = gen::random_graph(1 << 13, 10, 4);
  auto small = apps::decompose(g, 0.05, 2);
  auto large = apps::decompose(g, 0.8, 2);
  EXPECT_GT(large.num_clusters, small.num_clusters);
}

TEST(Decomposition, BetaOneIsFine) {
  auto g = gen::cycle_graph(100);
  auto d = apps::decompose(g, 1.0, 1);
  for (vertex_id v = 0; v < 100; v++) ASSERT_NE(d.cluster[v], kNoVertex);
}

TEST(Decomposition, RejectsBadArguments) {
  auto sym = gen::cycle_graph(10);
  EXPECT_THROW(apps::decompose(sym, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(apps::decompose(sym, 1.5, 1), std::invalid_argument);
  auto dir = gen::rmat_digraph(8, 1 << 9, 1);
  EXPECT_THROW(apps::decompose(dir, 0.2, 1), std::invalid_argument);
  EXPECT_THROW(apps::connected_components_decomposition(dir), std::invalid_argument);
}

TEST(Decomposition, EmptyAndEdgelessGraphs) {
  auto g0 = graph::from_edges(0, {}, {.symmetrize = true});
  EXPECT_EQ(apps::decompose(g0, 0.5).num_clusters, 0u);
  auto g5 = graph::from_edges(5, {}, {.symmetrize = true});
  auto cc = apps::connected_components_decomposition(g5);
  EXPECT_EQ(cc.num_components, 5u);
}

TEST(Decomposition, ConnectedGraphOneComponent) {
  auto g = gen::grid3d_graph(6);
  auto cc = apps::connected_components_decomposition(g, 0.2, 9);
  EXPECT_EQ(cc.num_components, 1u);
  for (vertex_id v = 0; v < g.num_vertices(); v++)
    EXPECT_EQ(cc.labels[v], cc.labels[0]);
  EXPECT_GE(cc.num_levels, 1u);
}

TEST(Decomposition, DeterministicForSeed) {
  auto g = gen::rmat_graph(9, 1 << 11, 7);
  auto a = apps::decompose(g, 0.2, 42);
  auto b = apps::decompose(g, 0.2, 42);
  // Number of clusters and the cut are functions of (graph, seed) only up
  // to CAS races on claims; cluster counts must match (wake schedule is
  // deterministic), and every claimed id must be a valid center in both.
  EXPECT_EQ(a.num_clusters, b.num_clusters);
}

// Tests for two-pass eccentricity estimation (KDD'15 extension): the
// estimate is a valid lower bound, never worse than the single-pass Radii
// estimate from the same seed budget, and exact on paths (whose endpoints
// pass 1 always discovers as periphery).
#include "apps/eccentricity.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/radii.h"
#include "baseline/serial.h"
#include "graph/generators.h"

using namespace ligra;

class EccSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EccSeeds, LowerBoundOnTrueEccentricity) {
  uint64_t seed = GetParam();
  auto g = gen::random_graph(400, 4, seed);
  auto est = apps::eccentricity_two_pass(g, seed, 16);
  auto exact = baseline::exact_eccentricity(g);
  for (vertex_id v = 0; v < g.num_vertices(); v++) {
    if (est.ecc[v] >= 0) EXPECT_LE(est.ecc[v], exact[v]) << "vertex " << v;
  }
}

TEST_P(EccSeeds, SecondPassNeverHurtsDiameterEstimate) {
  uint64_t seed = GetParam();
  auto g = gen::random_graph(1000, 3, seed + 9);
  auto one_pass = apps::radii_estimate(g, seed, 16);
  auto two_pass = apps::eccentricity_two_pass(g, seed, 16);
  EXPECT_GE(two_pass.diameter_estimate, one_pass.diameter_estimate);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EccSeeds, ::testing::Values(1, 2, 3, 4));

TEST(Eccentricity, ExactOnPathViaPeripheryPass) {
  // Pass 1 finds some vertex far along the path; pass 2 runs from the
  // extremes, making the diameter estimate exact.
  auto g = gen::path_graph(200);
  auto est = apps::eccentricity_two_pass(g, 3, 8);
  EXPECT_EQ(est.diameter_estimate, 199);
}

TEST(Eccentricity, TightOnGridWhereOnePassIsLoose) {
  auto g = gen::grid3d_graph(10);  // diameter 15
  auto two_pass = apps::eccentricity_two_pass(g, 1, 32);
  EXPECT_GE(two_pass.diameter_estimate, 13);
  EXPECT_LE(two_pass.diameter_estimate, 15);
}

TEST(Eccentricity, EmptyGraph) {
  graph g;
  auto est = apps::eccentricity_two_pass(g);
  EXPECT_TRUE(est.ecc.empty());
  EXPECT_EQ(est.diameter_estimate, 0);
}

TEST(Eccentricity, SingleVertex) {
  auto g = graph::from_edges(1, {}, {.symmetrize = true});
  auto est = apps::eccentricity_two_pass(g, 1, 4);
  EXPECT_EQ(est.ecc[0], 0);
}

TEST(Eccentricity, EstimatesMatchExactWhenSamplingEverything) {
  auto g = gen::cycle_graph(32);
  auto est = apps::eccentricity_two_pass(g, 5, 64);  // clamped to n=32
  auto exact = baseline::exact_eccentricity(g);
  for (vertex_id v = 0; v < 32; v++) EXPECT_EQ(est.ecc[v], exact[v]);
}

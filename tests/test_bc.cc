// Tests for betweenness centrality (paper §4.2): agreement with serial
// Brandes on random graphs (parameterized seeds), hand-computed small
// cases, and directed-graph handling.
#include "apps/bc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/serial.h"
#include "graph/generators.h"

using namespace ligra;

namespace {

void expect_scores_match(const std::vector<double>& got,
                         const std::vector<double>& expect) {
  ASSERT_EQ(got.size(), expect.size());
  for (size_t v = 0; v < got.size(); v++) {
    EXPECT_NEAR(got[v], expect[v], 1e-6 * (1.0 + std::fabs(expect[v])))
        << "vertex " << v;
  }
}

}  // namespace

class BcGraphs : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BcGraphs, MatchesBrandesOnRmat) {
  uint64_t seed = GetParam();
  auto g = gen::rmat_graph(9, 1 << 12, seed);
  auto src = static_cast<vertex_id>((seed * 97) % g.num_vertices());
  expect_scores_match(apps::bc(g, src).dependency, baseline::bc(g, src));
}

TEST_P(BcGraphs, MatchesBrandesOnRandom) {
  uint64_t seed = GetParam();
  auto g = gen::random_graph(1500, 5, seed + 50);
  expect_scores_match(apps::bc(g, 3).dependency, baseline::bc(g, 3));
}

TEST_P(BcGraphs, MatchesBrandesOnDirected) {
  uint64_t seed = GetParam();
  auto g = gen::rmat_digraph(9, 1 << 11, seed + 200);
  expect_scores_match(apps::bc(g, 0).dependency, baseline::bc(g, 0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BcGraphs, ::testing::Values(1, 2, 3, 4, 5));

TEST(Bc, PathGraphHandComputed) {
  // Path 0-1-2-3, source 0: delta(1) = 2 (paths to 2 and 3 pass through),
  // delta(2) = 1, delta(3) = 0.
  auto g = gen::path_graph(4);
  auto result = apps::bc(g, 0);
  EXPECT_DOUBLE_EQ(result.dependency[0], 0.0);
  EXPECT_DOUBLE_EQ(result.dependency[1], 2.0);
  EXPECT_DOUBLE_EQ(result.dependency[2], 1.0);
  EXPECT_DOUBLE_EQ(result.dependency[3], 0.0);
}

TEST(Bc, DiamondSplitsCredit) {
  // 0 -> {1, 2} -> 3 (two equal shortest paths): each middle vertex gets
  // half the dependency for reaching 3.
  auto g = graph::from_edges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}},
                             {.symmetrize = true});
  auto result = apps::bc(g, 0);
  EXPECT_DOUBLE_EQ(result.dependency[1], 0.5);
  EXPECT_DOUBLE_EQ(result.dependency[2], 0.5);
  EXPECT_DOUBLE_EQ(result.dependency[3], 0.0);
}

TEST(Bc, StarCenterCarriesEverything) {
  auto g = gen::star_graph(10);
  auto from_leaf = apps::bc(g, 1);
  // From a leaf, the center lies on the path to all 8 other leaves.
  EXPECT_DOUBLE_EQ(from_leaf.dependency[0], 8.0);
  for (vertex_id v = 1; v < 10; v++)
    EXPECT_DOUBLE_EQ(from_leaf.dependency[v], 0.0);
}

TEST(Bc, SourceAndUnreachedScoreZero) {
  auto g = graph::from_edges(5, {{0, 1}, {1, 2}}, {.symmetrize = true});
  auto result = apps::bc(g, 0);
  EXPECT_DOUBLE_EQ(result.dependency[0], 0.0);
  EXPECT_DOUBLE_EQ(result.dependency[3], 0.0);  // unreachable
  EXPECT_DOUBLE_EQ(result.dependency[4], 0.0);
}

TEST(Bc, ForcedStrategiesAgree) {
  auto g = gen::rmat_graph(9, 1 << 12, 11);
  auto expect = baseline::bc(g, 0);
  for (traversal t : {traversal::sparse, traversal::dense}) {
    edge_map_options opts;
    opts.strategy = t;
    expect_scores_match(apps::bc(g, 0, opts).dependency, expect);
  }
}

TEST(Bc, OutOfRangeSourceThrows) {
  auto g = gen::path_graph(4);
  EXPECT_THROW(apps::bc(g, 4), std::invalid_argument);
}

// Tests for the parallel sequence primitives (DESIGN.md S2): reduce, scan,
// pack/filter, tabulate/map, and the parallel merge sort — each compared
// against its std:: sequential counterpart on parameterized random inputs.
#include "parallel/primitives.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "parallel/sort.h"
#include "util/rng.h"

namespace p = ligra::parallel;
using ligra::rng;

namespace {

std::vector<uint64_t> random_values(size_t n, uint64_t seed,
                                    uint64_t bound = 1000) {
  rng r(seed);
  std::vector<uint64_t> v(n);
  for (size_t i = 0; i < n; i++) v[i] = r.bounded(i, bound);
  return v;
}

}  // namespace

// --- reduce -----------------------------------------------------------------

class PrimitiveSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(PrimitiveSizes, ReduceAddMatchesAccumulate) {
  size_t n = GetParam();
  auto v = random_values(n, n);
  uint64_t expect = std::accumulate(v.begin(), v.end(), uint64_t{0});
  EXPECT_EQ(p::reduce_add(n, [&](size_t i) { return v[i]; }), expect);
}

TEST_P(PrimitiveSizes, ReduceMaxMatchesMaxElement) {
  size_t n = GetParam();
  auto v = random_values(n, n * 31 + 1);
  uint64_t expect = n == 0 ? 0 : *std::max_element(v.begin(), v.end());
  EXPECT_EQ(p::reduce_max(n, [&](size_t i) { return v[i]; }, uint64_t{0}),
            expect);
}

TEST_P(PrimitiveSizes, ScanMatchesExclusivePrefixSum) {
  size_t n = GetParam();
  auto v = random_values(n, n * 7 + 3);
  auto expect = v;
  uint64_t acc = 0;
  for (size_t i = 0; i < n; i++) {
    uint64_t next = acc + expect[i];
    expect[i] = acc;
    acc = next;
  }
  auto got = v;
  uint64_t total = p::scan_add_inplace(got.data(), n);
  EXPECT_EQ(total, acc);
  EXPECT_EQ(got, expect);
}

TEST_P(PrimitiveSizes, PackKeepsExactlyMatchingElementsInOrder) {
  size_t n = GetParam();
  auto v = random_values(n, n * 13 + 5);
  auto got = p::pack(
      n, [&](size_t i) { return v[i]; }, [&](size_t i) { return v[i] % 3 == 0; });
  std::vector<uint64_t> expect;
  for (auto x : v)
    if (x % 3 == 0) expect.push_back(x);
  EXPECT_EQ(got, expect);
}

TEST_P(PrimitiveSizes, PackIndexMatchesManualScan) {
  size_t n = GetParam();
  auto v = random_values(n, n * 17 + 11);
  auto got = p::pack_index<uint32_t>(n, [&](size_t i) { return v[i] < 100; });
  std::vector<uint32_t> expect;
  for (size_t i = 0; i < n; i++)
    if (v[i] < 100) expect.push_back(static_cast<uint32_t>(i));
  EXPECT_EQ(got, expect);
}

TEST_P(PrimitiveSizes, SortMatchesStdSort) {
  size_t n = GetParam();
  auto v = random_values(n, n * 19 + 7, 1u << 20);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  p::sort_inplace(v);
  EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrimitiveSizes,
                         ::testing::Values(0, 1, 2, 7, 100, 2047, 2048, 2049,
                                           100000, 1 << 20));

// --- additional behaviours ----------------------------------------------------

TEST(Primitives, ReduceIsDeterministicAcrossWorkerCounts) {
  // Floating-point reduction must give bit-identical results regardless of
  // parallelism (blocked decomposition is schedule-independent).
  const size_t n = 1 << 18;
  std::vector<double> v(n);
  rng r(99);
  for (size_t i = 0; i < n; i++) v[i] = r.uniform(i) - 0.5;
  double with_p = p::reduce_add(n, [&](size_t i) { return v[i]; });
  int before = p::num_workers();
  p::set_num_workers(1);
  double with_1 = p::reduce_add(n, [&](size_t i) { return v[i]; });
  p::set_num_workers(before);
  EXPECT_EQ(with_p, with_1);
}

TEST(Primitives, ScanGenericOperator) {
  // Exclusive max-scan.
  std::vector<int> v = {3, 1, 4, 1, 5, 9, 2, 6};
  int total = p::scan_inplace(v.data(), v.size(), 0,
                              [](int a, int b) { return std::max(a, b); });
  EXPECT_EQ(total, 9);
  EXPECT_EQ(v, (std::vector<int>{0, 3, 3, 4, 4, 5, 9, 9}));
}

TEST(Primitives, FilterVector) {
  std::vector<int> v = {5, -2, 8, -1, 0, 3};
  auto got = p::filter(v, [](int x) { return x > 0; });
  EXPECT_EQ(got, (std::vector<int>{5, 8, 3}));
}

TEST(Primitives, TabulateAndMap) {
  auto sq = p::tabulate(10, [](size_t i) { return i * i; });
  for (size_t i = 0; i < 10; i++) EXPECT_EQ(sq[i], i * i);
  auto doubled = p::map(sq, [](size_t x) { return 2 * x; });
  for (size_t i = 0; i < 10; i++) EXPECT_EQ(doubled[i], 2 * i * i);
}

TEST(Primitives, CountIfIndex) {
  EXPECT_EQ(p::count_if_index(100, [](size_t i) { return i % 10 == 0; }), 10u);
  EXPECT_EQ(p::count_if_index(0, [](size_t) { return true; }), 0u);
}

TEST(Primitives, SortIsStable) {
  // Pairs sorted by key must preserve insertion order of equal keys.
  struct kv {
    int key;
    int pos;
  };
  const size_t n = 50000;
  std::vector<kv> v(n);
  rng r(5);
  for (size_t i = 0; i < n; i++)
    v[i] = {static_cast<int>(r.bounded(i, 16)), static_cast<int>(i)};
  p::sort_inplace(v, [](const kv& a, const kv& b) { return a.key < b.key; });
  for (size_t i = 1; i < n; i++) {
    ASSERT_LE(v[i - 1].key, v[i].key);
    if (v[i - 1].key == v[i].key) ASSERT_LT(v[i - 1].pos, v[i].pos);
  }
}

TEST(Primitives, SortAlreadySortedAndReversed) {
  std::vector<int> asc(100000);
  std::iota(asc.begin(), asc.end(), 0);
  auto des = asc;
  std::reverse(des.begin(), des.end());
  auto expect = asc;
  p::sort_inplace(asc);
  EXPECT_EQ(asc, expect);
  p::sort_inplace(des);
  EXPECT_EQ(des, expect);
}

TEST(Primitives, SortedReturnsCopy) {
  std::vector<int> v = {3, 1, 2};
  auto s = p::sorted(v);
  EXPECT_EQ(s, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(v, (std::vector<int>{3, 1, 2}));
}

TEST(Primitives, PackAllOrNothing) {
  const size_t n = 10000;
  auto all = p::pack(
      n, [](size_t i) { return i; }, [](size_t) { return true; });
  EXPECT_EQ(all.size(), n);
  auto none = p::pack(
      n, [](size_t i) { return i; }, [](size_t) { return false; });
  EXPECT_TRUE(none.empty());
}

TEST(Primitives, BinarySearchLeqFindsLastMatch) {
  // Exclusive degree prefix with zero-degree runs: equal adjacent values.
  // binary_search_leq must return the LAST index <= value, so a block
  // boundary landing on a zero-degree run resolves to the vertex whose
  // (non-empty) edge range actually contains it.
  std::vector<uint64_t> prefix = {0, 0, 0, 5, 5, 9, 12};
  EXPECT_EQ(p::binary_search_leq(prefix.data(), prefix.size(), uint64_t{0}),
            2u);
  EXPECT_EQ(p::binary_search_leq(prefix.data(), prefix.size(), uint64_t{3}),
            2u);
  EXPECT_EQ(p::binary_search_leq(prefix.data(), prefix.size(), uint64_t{5}),
            4u);
  EXPECT_EQ(p::binary_search_leq(prefix.data(), prefix.size(), uint64_t{8}),
            4u);
  EXPECT_EQ(p::binary_search_leq(prefix.data(), prefix.size(), uint64_t{11}),
            5u);
  EXPECT_EQ(p::binary_search_leq(prefix.data(), prefix.size(), uint64_t{100}),
            6u);
}

TEST(Primitives, BinarySearchLeqMatchesLinearScan) {
  std::vector<uint64_t> prefix = {0};
  uint64_t acc = 0;
  for (size_t i = 0; i < 300; i++) {
    acc += (i * 7 + 3) % 5;  // includes zero increments
    prefix.push_back(acc);
  }
  for (uint64_t v = 0; v <= acc; v += 3) {
    size_t expect = 0;
    for (size_t i = 0; i < prefix.size(); i++)
      if (prefix[i] <= v) expect = i;
    EXPECT_EQ(p::binary_search_leq(prefix.data(), prefix.size(), v), expect)
        << "value " << v;
  }
}

TEST(Primitives, ScatterBlocksCompactsStridedBuffers) {
  // 4 blocks of stride 8, partially filled; offsets = exclusive prefix of
  // the per-block counts. scatter_blocks must place block b's first count[b]
  // entries contiguously at offsets[b].
  const size_t stride = 8;
  std::vector<size_t> counts = {3, 0, 8, 5};
  std::vector<int> src(counts.size() * stride, -1);
  std::vector<int> expect;
  int next = 0;
  for (size_t b = 0; b < counts.size(); b++)
    for (size_t i = 0; i < counts[b]; i++) {
      src[b * stride + i] = next;
      expect.push_back(next++);
    }
  std::vector<size_t> offsets(counts.size() + 1, 0);
  for (size_t b = 0; b < counts.size(); b++)
    offsets[b + 1] = offsets[b] + counts[b];
  std::vector<int> out(offsets.back(), -2);
  p::scatter_blocks(src.data(), stride, offsets.data(), counts.size(),
                    out.data());
  EXPECT_EQ(out, expect);
}

// Tests for the engine graph registry (docs/ENGINE.md): named residency,
// epochs, refcounted handle lifetime across evict/replace, file loading in
// all three formats with auto-detection, and thread-safety under a
// load/get/evict hammer.
#include "engine/registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "graph/graph_io.h"

namespace e = ligra::engine;
using namespace ligra;

namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "/" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }
  void write(const std::string& contents) {
    std::ofstream out(path_);
    out << contents;
  }

 private:
  std::string path_;
};

graph small_graph() { return gen::rmat_graph(8, 1 << 11, /*seed=*/3); }

}  // namespace

TEST(EngineRegistry, AddGetEvict) {
  e::registry reg;
  EXPECT_EQ(reg.size(), 0u);
  auto h = reg.add("g", small_graph());
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.get("g").get(), h.get());
  EXPECT_EQ(h->name(), "g");
  EXPECT_FALSE(h->weighted());
  EXPECT_TRUE(reg.evict("g"));
  EXPECT_FALSE(reg.evict("g"));
  EXPECT_EQ(reg.size(), 0u);
}

TEST(EngineRegistry, GetThrowsTryGetReturnsNull) {
  e::registry reg;
  EXPECT_EQ(reg.try_get("missing"), nullptr);
  EXPECT_THROW(reg.get("missing"), e::not_found_error);
  try {
    reg.get("missing");
  } catch (const e::not_found_error& err) {
    EXPECT_NE(std::string(err.what()).find("missing"), std::string::npos);
  }
}

TEST(EngineRegistry, EpochsAreUniqueAndIncreaseOnReplace) {
  e::registry reg;
  auto h1 = reg.add("a", small_graph());
  auto h2 = reg.add("b", small_graph());
  EXPECT_NE(h1->epoch(), h2->epoch());
  auto h3 = reg.add("a", small_graph());  // replace
  EXPECT_GT(h3->epoch(), h1->epoch());
  EXPECT_EQ(reg.get("a")->epoch(), h3->epoch());
  EXPECT_EQ(reg.size(), 2u);
}

TEST(EngineRegistry, EvictedHandleStaysUsable) {
  e::registry reg;
  auto h = reg.add("g", small_graph());
  vertex_id n = h->structure().num_vertices();
  reg.evict("g");
  // The entry outlives its registry slot as long as the handle is held.
  EXPECT_EQ(h->structure().num_vertices(), n);
  EXPECT_GT(h->structure().num_edges(), 0u);
}

TEST(EngineRegistry, ReplacedHandleKeepsOldGraph) {
  e::registry reg;
  auto old_handle = reg.add("g", gen::path_graph(10));
  reg.add("g", gen::path_graph(500));
  EXPECT_EQ(old_handle->structure().num_vertices(), 10u);
  EXPECT_EQ(reg.get("g")->structure().num_vertices(), 500u);
}

TEST(EngineRegistry, WeightedEntryCarriesStructureAndWeights) {
  e::registry reg;
  wgraph wg = gen::add_random_weights(gen::grid3d_graph(6), 1, 9);
  auto h = reg.add("w", wg);
  EXPECT_TRUE(h->weighted());
  EXPECT_EQ(h->structure().num_vertices(), wg.num_vertices());
  EXPECT_EQ(h->structure().num_edges(), wg.num_edges());
  EXPECT_EQ(h->weights().num_edges(), wg.num_edges());
  // Structure mirrors the weighted adjacency exactly.
  for (vertex_id v = 0; v < 20; v++) {
    auto a = h->structure().out_neighbors(v);
    auto b = h->weights().out_neighbors(v);
    ASSERT_EQ(std::vector<vertex_id>(a.begin(), a.end()),
              std::vector<vertex_id>(b.begin(), b.end()));
  }
}

TEST(EngineRegistry, UnweightedEntryRejectsWeightAccess) {
  e::registry reg;
  auto h = reg.add("g", small_graph());
  EXPECT_THROW(h->weights(), e::engine_error);
}

TEST(EngineRegistry, CompressedReplica) {
  e::registry reg;
  auto plain = reg.add("p", small_graph());
  auto packed = reg.add("c", small_graph(), /*compress=*/true);
  EXPECT_EQ(plain->compressed(), nullptr);
  ASSERT_NE(packed->compressed(), nullptr);
  EXPECT_EQ(packed->compressed()->num_edges(), packed->structure().num_edges());
  EXPECT_GT(packed->compressed_bytes(), 0u);
  EXPECT_LT(packed->compressed_bytes(), packed->memory_bytes());
}

TEST(EngineRegistry, LoadAdjacencyAutoDetect) {
  TempFile f("reg_adj.txt");
  graph g = gen::rmat_graph(7, 1 << 10);
  io::write_adjacency_graph(f.path(), g);
  e::registry reg;
  auto h = reg.load("g", f.path(), {.symmetric = true});
  EXPECT_EQ(h->structure(), g);
}

TEST(EngineRegistry, LoadBinaryAutoDetect) {
  TempFile f("reg_bin.lgrb");
  graph g = gen::rmat_digraph(7, 1 << 10);
  io::write_binary_graph(f.path(), g);
  e::registry reg;
  auto h = reg.load("g", f.path());
  EXPECT_EQ(h->structure(), g);
}

TEST(EngineRegistry, LoadWeightedEdgeList) {
  TempFile f("reg_edges.txt");
  f.write("# weighted edge list\n0 1 5\n1 2 3\n2 0 7\n");
  e::registry reg;
  auto h = reg.load("g", f.path(), {.weighted = true, .symmetric = true});
  EXPECT_TRUE(h->weighted());
  EXPECT_EQ(h->structure().num_vertices(), 3u);
  EXPECT_EQ(h->structure().num_edges(), 6u);  // symmetrized
}

TEST(EngineRegistry, LoadMissingFileErrorNamesPath) {
  e::registry reg;
  try {
    reg.load("g", "/nonexistent/graph.adj");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("/nonexistent/graph.adj"),
              std::string::npos);
  }
  EXPECT_EQ(reg.size(), 0u);  // failed load registers nothing
}

TEST(EngineRegistry, ListAndMemoryAccounting) {
  e::registry reg;
  reg.add("a", small_graph());
  reg.add("b", gen::add_random_weights(gen::grid3d_graph(5), 1, 4));
  auto infos = reg.list();
  ASSERT_EQ(infos.size(), 2u);
  size_t total = 0;
  for (const auto& info : infos) {
    EXPECT_GT(info.memory_bytes, 0u);
    EXPECT_GT(info.num_edges, 0u);
    total += info.memory_bytes;
  }
  EXPECT_EQ(reg.total_memory_bytes(), total);
}

TEST(EngineRegistry, ConcurrentLoadGetEvictHammer) {
  e::registry reg;
  reg.add("stable", small_graph());
  const int threads = 8, iters = 200;
  std::atomic<int> lookups{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; t++) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < iters; i++) {
        switch ((t + i) % 4) {
          case 0:
            reg.add("churn", gen::path_graph(16));
            break;
          case 1:
            reg.evict("churn");
            break;
          case 2: {
            if (auto h = reg.try_get("churn")) {
              // Handle remains valid even if evicted concurrently.
              ASSERT_EQ(h->structure().num_vertices(), 16u);
            }
            break;
          }
          default: {
            auto h = reg.try_get("stable");
            ASSERT_NE(h, nullptr);
            ASSERT_GT(h->structure().num_edges(), 0u);
            lookups.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
        (void)reg.total_memory_bytes();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_GT(lookups.load(), 0);
  EXPECT_NE(reg.try_get("stable"), nullptr);
}

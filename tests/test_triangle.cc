// Tests for exact triangle counting (ICDE'15 extension): closed-form
// counts on known topologies and agreement with the serial counter on
// random graphs.
#include "apps/triangle.h"

#include <gtest/gtest.h>

#include "baseline/serial.h"
#include "graph/generators.h"

using namespace ligra;

TEST(Triangle, SingleTriangle) {
  auto g = graph::from_edges(3, {{0, 1}, {1, 2}, {2, 0}}, {.symmetrize = true});
  EXPECT_EQ(apps::triangle_count(g).num_triangles, 1u);
}

TEST(Triangle, CompleteGraphClosedForm) {
  // K_n has C(n,3) triangles.
  for (vertex_id n : {4u, 5u, 8u, 12u}) {
    auto g = gen::complete_graph(n);
    uint64_t expect = static_cast<uint64_t>(n) * (n - 1) * (n - 2) / 6;
    EXPECT_EQ(apps::triangle_count(g).num_triangles, expect) << "n=" << n;
  }
}

TEST(Triangle, TreesAndCyclesHaveNone) {
  EXPECT_EQ(apps::triangle_count(gen::binary_tree_graph(31)).num_triangles, 0u);
  EXPECT_EQ(apps::triangle_count(gen::path_graph(100)).num_triangles, 0u);
  EXPECT_EQ(apps::triangle_count(gen::cycle_graph(100)).num_triangles, 0u);
  EXPECT_EQ(apps::triangle_count(gen::star_graph(50)).num_triangles, 0u);
}

TEST(Triangle, TriangleCycleHasOne) {
  EXPECT_EQ(apps::triangle_count(gen::cycle_graph(3)).num_triangles, 1u);
}

class TriangleSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TriangleSeeds, MatchesSerialOnRmat) {
  uint64_t seed = GetParam();
  auto g = gen::rmat_graph(9, 1 << 12, seed);
  EXPECT_EQ(apps::triangle_count(g).num_triangles,
            baseline::triangle_count(g));
}

TEST_P(TriangleSeeds, MatchesSerialOnRandomLocal) {
  uint64_t seed = GetParam();
  auto g = gen::random_local_graph(2000, 8, seed);
  EXPECT_EQ(apps::triangle_count(g).num_triangles,
            baseline::triangle_count(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriangleSeeds, ::testing::Values(1, 2, 3, 4, 5));

TEST(Triangle, RequiresSymmetric) {
  auto g = gen::rmat_digraph(8, 1 << 9, 1);
  EXPECT_THROW(apps::triangle_count(g), std::invalid_argument);
}

TEST(Triangle, EmptyAndTinyGraphs) {
  auto g0 = graph::from_edges(0, {}, {.symmetrize = true});
  EXPECT_EQ(apps::triangle_count(g0).num_triangles, 0u);
  auto g2 = gen::path_graph(2);
  EXPECT_EQ(apps::triangle_count(g2).num_triangles, 0u);
}

TEST(Triangle, GridHasNoTriangles) {
  // Bipartite-ish torus (even side): no odd cycles of length 3.
  EXPECT_EQ(apps::triangle_count(gen::grid3d_graph(6)).num_triangles, 0u);
}

// Tests for the CSR graph types (DESIGN.md S4): construction from edge
// lists, CSR invariants, symmetrize / dedup / self-loop options, transpose
// consistency, weighted graphs, and validation failures.
#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "util/rng.h"

using namespace ligra;

namespace {

// Directed triangle plus a pendant: 0->1, 1->2, 2->0, 0->3.
std::vector<edge> diamond_edges() { return {{0, 1}, {1, 2}, {2, 0}, {0, 3}}; }

}  // namespace

TEST(Graph, EmptyGraph) {
  graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.empty());
}

TEST(Graph, FromEdgesDirectedBasics) {
  auto g = graph::from_edges(4, diamond_edges(), {});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_FALSE(g.symmetric());
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(1), 1u);
  EXPECT_EQ(g.out_degree(3), 0u);
  EXPECT_EQ(g.in_degree(0), 1u);
  EXPECT_EQ(g.in_degree(3), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(Graph, AdjacencyListsAreSorted) {
  auto g = graph::from_edges(5, {{0, 4}, {0, 1}, {0, 3}, {0, 2}}, {});
  auto nbrs = g.out_neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(Graph, SymmetrizeAddsReverseEdges) {
  auto g = graph::from_edges(3, {{0, 1}, {1, 2}}, {.symmetrize = true});
  EXPECT_TRUE(g.symmetric());
  EXPECT_EQ(g.num_edges(), 4u);  // both directions
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 1));
  // in == out for symmetric graphs
  for (vertex_id v = 0; v < 3; v++) EXPECT_EQ(g.in_degree(v), g.out_degree(v));
}

TEST(Graph, RemovesSelfLoopsByDefault) {
  auto g = graph::from_edges(3, {{0, 0}, {0, 1}, {1, 1}, {2, 2}}, {});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(Graph, KeepsSelfLoopsWhenAsked) {
  auto g = graph::from_edges(2, {{0, 0}, {0, 1}},
                             {.remove_self_loops = false});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 0));
}

TEST(Graph, RemovesDuplicatesByDefault) {
  auto g = graph::from_edges(3, {{0, 1}, {0, 1}, {0, 1}, {1, 2}}, {});
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Graph, KeepsDuplicatesWhenAsked) {
  auto g = graph::from_edges(3, {{0, 1}, {0, 1}},
                             {.remove_duplicates = false});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.out_degree(0), 2u);
}

TEST(Graph, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(graph::from_edges(2, {{0, 2}}, {}), std::invalid_argument);
  EXPECT_THROW(graph::from_edges(2, {{5, 0}}, {}), std::invalid_argument);
}

TEST(Graph, TransposeFlipsEdges) {
  auto g = graph::from_edges(4, diamond_edges(), {});
  auto t = g.transpose();
  EXPECT_EQ(t.num_edges(), g.num_edges());
  for (vertex_id u = 0; u < 4; u++) {
    for (vertex_id v : g.out_neighbors(u)) EXPECT_TRUE(t.has_edge(v, u));
    EXPECT_EQ(t.out_degree(u), g.in_degree(u));
    EXPECT_EQ(t.in_degree(u), g.out_degree(u));
  }
}

TEST(Graph, InEdgesMatchOutEdgesOnDirectedGraph) {
  auto g = gen::rmat_digraph(10, 1 << 13, 3);
  // Every out-edge (u,v) must appear as in-edge of v, and counts match.
  edge_id total_in = 0;
  for (vertex_id v = 0; v < g.num_vertices(); v++)
    total_in += g.in_degree(v);
  EXPECT_EQ(total_in, g.num_edges());
  for (vertex_id u = 0; u < g.num_vertices(); u++) {
    for (vertex_id v : g.out_neighbors(u)) {
      auto in = g.in_neighbors(v);
      EXPECT_TRUE(std::binary_search(in.begin(), in.end(), u))
          << "edge " << u << "->" << v;
    }
  }
}

TEST(Graph, ComputedNumEdgesMatches) {
  auto g = gen::rmat_graph(10, 1 << 13, 4);
  EXPECT_EQ(g.computed_num_edges(), g.num_edges());
}

TEST(Graph, ToEdgesRoundTrip) {
  auto g = graph::from_edges(4, diamond_edges(), {});
  auto edges = g.to_edges();
  auto g2 = graph::from_edges(4, edges, {});
  EXPECT_EQ(g, g2);
}

TEST(Graph, FromSymmetricEdgesSkipsTranspose) {
  std::vector<edge> sym = {{0, 1}, {1, 0}, {1, 2}, {2, 1}};
  auto g = graph::from_symmetric_edges(3, sym);
  EXPECT_TRUE(g.symmetric());
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.in_degree(1), 2u);
}

TEST(Graph, FromCsrValidates) {
  // Offsets wrong size.
  EXPECT_THROW(graph::from_csr(2, {0, 1}, {1}, {}, true), std::invalid_argument);
  // Non-monotone offsets.
  EXPECT_THROW(graph::from_csr(2, {0, 2, 1}, {1}, {}, true),
               std::invalid_argument);
  // Target out of range.
  EXPECT_THROW(graph::from_csr(2, {0, 1, 1}, {5}, {}, true),
               std::invalid_argument);
  // Valid.
  auto g = graph::from_csr(2, {0, 1, 2}, {1, 0}, {}, true);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Graph, MemoryBytesIsPlausible) {
  auto g = gen::rmat_graph(10, 1 << 12, 5);
  size_t b = g.memory_bytes();
  // At least offsets + edges.
  EXPECT_GE(b, g.num_edges() * sizeof(vertex_id));
}

TEST(WeightedGraph, WeightsFollowEdges) {
  std::vector<weighted_edge> edges = {{0, 1, 5}, {0, 2, 7}, {1, 2, -3}};
  auto g = wgraph::from_edges(3, edges, {});
  EXPECT_EQ(g.num_edges(), 3u);
  auto nbrs = g.out_neighbors(0);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(g.out_weight(0, 0), 5);
  EXPECT_EQ(g.out_weight(0, 1), 7);
  EXPECT_EQ(g.out_weight(1, 0), -3);
}

TEST(WeightedGraph, InWeightsMatchOutWeights) {
  std::vector<weighted_edge> edges = {{0, 1, 5}, {2, 1, 9}};
  auto g = wgraph::from_edges(3, edges, {});
  // in-edges of 1: from 0 (w 5) and from 2 (w 9), sorted by source.
  ASSERT_EQ(g.in_degree(1), 2u);
  auto in = g.in_neighbors(1);
  EXPECT_EQ(in[0], 0u);
  EXPECT_EQ(g.in_weight(1, 0), 5);
  EXPECT_EQ(in[1], 2u);
  EXPECT_EQ(g.in_weight(1, 1), 9);
}

TEST(WeightedGraph, SymmetrizePropagatesWeights) {
  std::vector<weighted_edge> edges = {{0, 1, 4}};
  auto g = wgraph::from_edges(2, edges, {.symmetrize = true});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.out_weight(0, 0), 4);
  EXPECT_EQ(g.out_weight(1, 0), 4);
}

TEST(Graph, DecodeOutMatchesSpanAndStopsEarly) {
  auto g = graph::from_edges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}}, {});
  std::vector<vertex_id> seen;
  g.decode_out(0, [&](vertex_id v, empty_weight, size_t j) {
    EXPECT_EQ(j, seen.size());
    seen.push_back(v);
    return seen.size() < 2;  // early exit after two
  });
  EXPECT_EQ(seen, (std::vector<vertex_id>{1, 2}));
}

TEST(Graph, EqualityOperator) {
  auto a = graph::from_edges(3, {{0, 1}, {1, 2}}, {.symmetrize = true});
  auto b = graph::from_edges(3, {{1, 2}, {0, 1}}, {.symmetrize = true});
  auto c = graph::from_edges(3, {{0, 2}, {1, 2}}, {.symmetrize = true});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

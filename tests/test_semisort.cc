// Tests for the parallel semisort primitive (SPAA'15 extension): equal
// keys must be contiguous, content preserved as a multiset, stability
// within groups, and group_starts correctness — across sizes and key
// distributions (parameterized).
#include "parallel/semisort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "util/rng.h"

namespace p = ligra::parallel;
using ligra::sequential_rng;

namespace {

struct record {
  uint32_t key;
  uint32_t payload;
  friend bool operator==(const record& a, const record& b) {
    return a.key == b.key && a.payload == b.payload;
  }
};

// Checks the semisort contract on `out` given the input `in`.
void expect_semisorted(const std::vector<record>& in,
                       const std::vector<record>& out) {
  ASSERT_EQ(in.size(), out.size());
  // Multiset equality.
  std::map<uint64_t, int> count;
  for (const auto& r : in) count[(uint64_t{r.key} << 32) | r.payload]++;
  for (const auto& r : out) count[(uint64_t{r.key} << 32) | r.payload]--;
  for (const auto& [k, c] : count) ASSERT_EQ(c, 0) << "multiset mismatch";
  // Contiguity: each key appears in exactly one run.
  std::map<uint32_t, bool> closed;
  for (size_t i = 0; i < out.size(); i++) {
    if (i > 0 && out[i].key != out[i - 1].key) closed[out[i - 1].key] = true;
    ASSERT_FALSE(closed.count(out[i].key) && closed[out[i].key])
        << "key " << out[i].key << " split across runs at " << i;
  }
}

std::vector<record> random_records(size_t n, uint32_t key_range,
                                   uint64_t seed) {
  sequential_rng r(seed);
  std::vector<record> v(n);
  for (size_t i = 0; i < n; i++) {
    v[i] = {static_cast<uint32_t>(r.bounded(key_range)),
            static_cast<uint32_t>(i)};
  }
  return v;
}

}  // namespace

class SemisortSizes
    : public ::testing::TestWithParam<std::pair<size_t, uint32_t>> {};

TEST_P(SemisortSizes, GroupsEqualKeysContiguously) {
  auto [n, key_range] = GetParam();
  auto in = random_records(n, key_range, n + key_range);
  auto out = in;
  p::semisort_inplace(out, [](const record& r) { return r.key; });
  expect_semisorted(in, out);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SemisortSizes,
    ::testing::Values(std::pair<size_t, uint32_t>{0, 1},
                      std::pair<size_t, uint32_t>{1, 1},
                      std::pair<size_t, uint32_t>{100, 3},
                      std::pair<size_t, uint32_t>{2048, 16},
                      std::pair<size_t, uint32_t>{2049, 16},
                      std::pair<size_t, uint32_t>{100000, 5},
                      std::pair<size_t, uint32_t>{100000, 1000},
                      std::pair<size_t, uint32_t>{100000, 100000},
                      std::pair<size_t, uint32_t>{1 << 20, 256}));

TEST(Semisort, StableWithinGroups) {
  auto in = random_records(200000, 32, 7);
  auto out = in;
  p::semisort_inplace(out, [](const record& r) { return r.key; });
  // payload == original index: within a key group, payloads must ascend.
  for (size_t i = 1; i < out.size(); i++) {
    if (out[i].key == out[i - 1].key)
      ASSERT_LT(out[i - 1].payload, out[i].payload) << "at " << i;
  }
}

TEST(Semisort, AllKeysEqual) {
  auto in = random_records(50000, 1, 3);
  auto out = in;
  p::semisort_inplace(out, [](const record& r) { return r.key; });
  EXPECT_EQ(out, in);  // single group, stability => identity
}

TEST(Semisort, AllKeysDistinct) {
  std::vector<record> in(100000);
  for (size_t i = 0; i < in.size(); i++)
    in[i] = {static_cast<uint32_t>(i), static_cast<uint32_t>(i)};
  auto out = in;
  p::semisort_inplace(out, [](const record& r) { return r.key; });
  expect_semisorted(in, out);
}

TEST(Semisort, GroupStartsIdentifiesRuns) {
  std::vector<record> v = {{5, 0}, {5, 1}, {2, 2}, {2, 3}, {2, 4}, {9, 5}};
  auto starts = p::group_starts(v, [](const record& r) { return r.key; });
  EXPECT_EQ(starts, (std::vector<size_t>{0, 2, 5}));
  std::vector<record> empty;
  EXPECT_TRUE(p::group_starts(empty, [](const record& r) { return r.key; }).empty());
}

TEST(Semisort, Plain64BitKeys) {
  sequential_rng r(9);
  std::vector<uint64_t> v(300000);
  for (auto& x : v) x = r.bounded(1000);
  auto expect_counts = std::map<uint64_t, size_t>{};
  for (auto x : v) expect_counts[x]++;
  p::semisort_inplace(v, [](uint64_t x) { return x; });
  // Runs partition the array; each key exactly one run of the right size.
  std::map<uint64_t, size_t> got;
  std::map<uint64_t, bool> seen_closed;
  for (size_t i = 0; i < v.size(); i++) {
    if (i > 0 && v[i] != v[i - 1]) seen_closed[v[i - 1]] = true;
    ASSERT_FALSE(seen_closed.count(v[i]) && seen_closed[v[i]]);
    got[v[i]]++;
  }
  EXPECT_EQ(got, expect_counts);
}

// Tests for edge_map (DESIGN.md S8) — the paper's core contribution.
//
// The central property: all three traversal strategies (sparse, dense,
// dense_forward) and the hybrid must produce identical results for
// commutative/idempotent update functions. Verified on parameterized
// random graphs against a sequential oracle, plus targeted tests for the
// threshold rule, early exit, duplicate removal, weights, and no-output.
#include "ligra/edge_map.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.h"
#include "ligra/vertex_subset.h"
#include "parallel/atomics.h"
#include "util/rng.h"

using namespace ligra;

namespace {

// Mark functor: marks targets not yet marked; output = newly marked.
struct mark_f {
  uint8_t* marked;
  bool update(vertex_id, vertex_id v) const {
    if (!marked[v]) {
      marked[v] = 1;
      return true;
    }
    return false;
  }
  bool update_atomic(vertex_id, vertex_id v) const {
    return compare_and_swap(&marked[v], uint8_t{0}, uint8_t{1});
  }
  bool cond(vertex_id v) const { return atomic_load(&marked[v]) == 0; }
};

// Sequential oracle for one mark step: the set of unmarked out-neighbors
// of the frontier.
std::vector<vertex_id> oracle_step(const graph& g,
                                   const std::vector<vertex_id>& frontier,
                                   const std::vector<uint8_t>& marked) {
  std::set<vertex_id> out;
  for (vertex_id u : frontier)
    for (vertex_id v : g.out_neighbors(u))
      if (!marked[v]) out.insert(v);
  return {out.begin(), out.end()};
}

std::vector<vertex_id> run_mark_step(const graph& g,
                                     const std::vector<vertex_id>& frontier,
                                     std::vector<uint8_t> marked,
                                     traversal strategy) {
  vertex_subset vs(g.num_vertices(), frontier);
  edge_map_options opts;
  opts.strategy = strategy;
  auto out = edge_map(g, vs, mark_f{marked.data()}, opts);
  return out.to_sorted_vector();
}

}  // namespace

class EdgeMapRandomGraphs : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EdgeMapRandomGraphs, AllStrategiesMatchOracle) {
  uint64_t seed = GetParam();
  auto g = gen::rmat_graph(9, 1 << 12, seed);
  const vertex_id n = g.num_vertices();
  rng r(seed * 31 + 1);

  // Random initial marking and random frontier drawn from marked vertices.
  std::vector<uint8_t> marked(n, 0);
  std::vector<vertex_id> frontier;
  for (vertex_id v = 0; v < n; v++) {
    if (r.uniform(v) < 0.1) {
      marked[v] = 1;
      if (r.uniform(v + n) < 0.5) frontier.push_back(v);
    }
  }
  auto expect = oracle_step(g, frontier, marked);
  for (traversal t : {traversal::sparse, traversal::dense,
                      traversal::dense_forward, traversal::automatic}) {
    EXPECT_EQ(run_mark_step(g, frontier, marked, t), expect)
        << "strategy " << traversal_name(t);
  }
}

TEST_P(EdgeMapRandomGraphs, DirectedGraphStrategiesAgree) {
  uint64_t seed = GetParam();
  auto g = gen::rmat_digraph(9, 1 << 12, seed + 100);
  std::vector<uint8_t> marked(g.num_vertices(), 0);
  std::vector<vertex_id> frontier;
  for (vertex_id v = 0; v < g.num_vertices(); v += 17) {
    marked[v] = 1;
    frontier.push_back(v);
  }
  auto expect = oracle_step(g, frontier, marked);
  for (traversal t : {traversal::sparse, traversal::dense,
                      traversal::dense_forward}) {
    EXPECT_EQ(run_mark_step(g, frontier, marked, t), expect)
        << "strategy " << traversal_name(t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeMapRandomGraphs,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(EdgeMap, ThresholdSelectsSparseThenDense) {
  auto g = gen::rmat_graph(10, 1 << 13, 1);
  std::vector<uint8_t> marked(g.num_vertices(), 0);

  // Tiny frontier of low-degree vertices -> sparse.
  vertex_id small = 0;
  for (vertex_id v = 0; v < g.num_vertices(); v++)
    if (g.out_degree(v) == 1) {
      small = v;
      break;
    }
  vertex_subset tiny(g.num_vertices(), small);
  edge_map_stats stats;
  edge_map_options opts;
  opts.stats = &stats;
  edge_map(g, tiny, mark_f{marked.data()}, opts);
  EXPECT_EQ(stats.used, traversal::sparse);

  // Full frontier -> dense.
  std::fill(marked.begin(), marked.end(), 0);
  vertex_subset all = vertex_subset::all(g.num_vertices());
  edge_map(g, all, mark_f{marked.data()}, opts);
  EXPECT_EQ(stats.used, traversal::dense);
  EXPECT_EQ(stats.frontier_size, g.num_vertices());
  EXPECT_EQ(stats.frontier_edges, g.num_edges());
}

TEST(EdgeMap, ThresholdDenominatorIsRespected) {
  auto g = gen::rmat_graph(10, 1 << 13, 2);
  // Denominator 1: dense only when |U| + outdeg(U) > m -> full frontier is
  // borderline; a small frontier must stay sparse even at denominator 1,
  // and everything goes dense at a huge denominator.
  std::vector<uint8_t> marked(g.num_vertices(), 0);
  vertex_subset one(g.num_vertices(), vertex_id{0});
  edge_map_stats stats;
  edge_map_options opts;
  opts.stats = &stats;
  opts.threshold_denominator = 1;
  edge_map(g, one, mark_f{marked.data()}, opts);
  EXPECT_EQ(stats.used, traversal::sparse);

  opts.threshold_denominator = g.num_edges() + 1;  // threshold ~ 0
  vertex_subset one2(g.num_vertices(), vertex_id{0});
  std::fill(marked.begin(), marked.end(), 0);
  edge_map(g, one2, mark_f{marked.data()}, opts);
  EXPECT_EQ(stats.used, traversal::dense);
}

TEST(EdgeMap, PreferDenseForwardOption) {
  auto g = gen::rmat_graph(9, 1 << 12, 3);
  std::vector<uint8_t> marked(g.num_vertices(), 0);
  vertex_subset all = vertex_subset::all(g.num_vertices());
  edge_map_stats stats;
  edge_map_options opts;
  opts.stats = &stats;
  opts.prefer_dense_forward = true;
  edge_map(g, all, mark_f{marked.data()}, opts);
  EXPECT_EQ(stats.used, traversal::dense_forward);
}

TEST(EdgeMap, CondEarlyExitLimitsDenseUpdates) {
  // Star graph, all leaves in the frontier, target = center. With a cond
  // that flips false after the first update, the dense traversal must stop
  // scanning the center's in-list after one hit.
  const vertex_id n = 1000;
  auto g = gen::star_graph(n);
  std::vector<int> hits(n, 0);
  struct once_f {
    int* hits;
    bool update(vertex_id, vertex_id v) const {
      hits[v]++;
      return true;
    }
    bool update_atomic(vertex_id, vertex_id v) const {
      write_add(&hits[v], 1);
      return true;
    }
    bool cond(vertex_id v) const { return atomic_load(&hits[v]) == 0; }
  };
  std::vector<vertex_id> leaves;
  for (vertex_id v = 1; v < n; v++) leaves.push_back(v);
  vertex_subset frontier(n, leaves);
  edge_map_options opts;
  opts.strategy = traversal::dense;
  auto out = edge_map(g, frontier, once_f{hits.data()}, opts);
  EXPECT_EQ(hits[0], 1);  // early exit: one update despite n-1 in-edges
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.contains(0));
}

TEST(EdgeMap, RemoveDuplicatesDeduplicatesSparseOutput) {
  // Functor that returns true unconditionally: without dedup, a target
  // with k frontier in-neighbors appears k times.
  auto g = gen::complete_graph(50);
  struct always_f {
    bool update(vertex_id, vertex_id) const { return true; }
    bool update_atomic(vertex_id, vertex_id) const { return true; }
    bool cond(vertex_id) const { return true; }
  };
  std::vector<vertex_id> half;
  for (vertex_id v = 0; v < 25; v++) half.push_back(v);

  vertex_subset f1(50, half);
  edge_map_options opts;
  opts.strategy = traversal::sparse;
  opts.remove_duplicates = true;
  auto out = edge_map(g, f1, always_f{}, opts);
  EXPECT_EQ(out.size(), 50u);  // every vertex exactly once
  auto ids = out.to_sorted_vector();
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
}

TEST(EdgeMap, WeightedUpdateReceivesCorrectWeights) {
  // Weighted path 0-1-2 with distinct weights; sum the weights seen.
  std::vector<weighted_edge> edges = {{0, 1, 10}, {1, 2, 20}};
  auto g = wgraph::from_edges(3, edges, {.symmetrize = true});
  struct sum_f {
    int64_t* total;
    bool update(vertex_id, vertex_id, int32_t w) const {
      write_add(total, static_cast<int64_t>(w));
      return false;
    }
    bool update_atomic(vertex_id u, vertex_id v, int32_t w) const {
      return update(u, v, w);
    }
    bool cond(vertex_id) const { return true; }
  };
  for (traversal t : {traversal::sparse, traversal::dense,
                      traversal::dense_forward}) {
    int64_t total = 0;
    vertex_subset frontier(3, vertex_id{1});
    edge_map_options opts;
    opts.strategy = t;
    edge_map(g, frontier, sum_f{&total}, opts);
    EXPECT_EQ(total, 30) << traversal_name(t);  // edges 1->0 (10) and 1->2 (20)
  }
}

TEST(EdgeMap, NoOutputSkipsSubsetButAppliesUpdates) {
  auto g = gen::cycle_graph(100);
  std::vector<uint8_t> marked(100, 0);
  vertex_subset frontier(100, vertex_id{0});
  edge_map_no_output(g, frontier, mark_f{marked.data()});
  EXPECT_EQ(marked[1] + marked[99], 2);
}

TEST(EdgeMap, EmptyFrontierYieldsEmptyOutput) {
  auto g = gen::cycle_graph(10);
  vertex_subset frontier(10);
  auto out = edge_map(g, frontier, mark_f{nullptr});
  EXPECT_TRUE(out.empty());
}

TEST(EdgeMap, MismatchedUniverseThrows) {
  auto g = gen::cycle_graph(10);
  vertex_subset frontier(5, vertex_id{0});
  EXPECT_THROW(edge_map(g, frontier, mark_f{nullptr}), std::invalid_argument);
}

TEST(EdgeMap, MultiRoundBfsReachesWholeComponent) {
  // Iterating the mark step from one vertex must mark the component —
  // checked across all strategies for identical reach counts.
  auto g = gen::random_graph(1 << 12, 5, 9);
  size_t reach[3];
  int ti = 0;
  for (traversal t : {traversal::sparse, traversal::dense,
                      traversal::automatic}) {
    std::vector<uint8_t> marked(g.num_vertices(), 0);
    marked[0] = 1;
    vertex_subset frontier(g.num_vertices(), vertex_id{0});
    edge_map_options opts;
    opts.strategy = t;
    while (!frontier.empty())
      frontier = edge_map(g, frontier, mark_f{marked.data()}, opts);
    reach[ti++] = static_cast<size_t>(
        std::count(marked.begin(), marked.end(), uint8_t{1}));
  }
  EXPECT_EQ(reach[0], reach[1]);
  EXPECT_EQ(reach[1], reach[2]);
  EXPECT_GT(reach[0], g.num_vertices() / 2);  // random deg-10 graph: giant CC
}

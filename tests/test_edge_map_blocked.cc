// Tests for the edge-balanced blocked sparse kernel, the bitmap frontier
// representation, and round-scratch reuse (DESIGN.md S8).
//
// Properties checked:
//   * blocked sparse == legacy per-vertex sparse == bitmap dense ==
//     dense_forward == sequential oracle, on rMat (power-law) and uniform
//     random graphs, with and without remove_duplicates / produce_output;
//   * multi-round blocked BFS matches baseline::bfs_levels;
//   * sparse <-> bytes <-> bitmap round-trips preserve size and membership;
//   * a hub frontier splits across > 1 block (stats.blocks);
//   * steady-state rounds reuse the scratch without reallocating (stable
//     buffer data() pointers) and leave the winner array fully reset.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "baseline/serial.h"
#include "graph/generators.h"
#include "ligra/edge_map.h"
#include "ligra/vertex_subset.h"
#include "parallel/atomics.h"
#include "util/rng.h"

using namespace ligra;

namespace {

struct mark_f {
  uint8_t* marked;
  bool update(vertex_id, vertex_id v) const {
    if (!marked[v]) {
      marked[v] = 1;
      return true;
    }
    return false;
  }
  bool update_atomic(vertex_id, vertex_id v) const {
    return compare_and_swap(&marked[v], uint8_t{0}, uint8_t{1});
  }
  bool cond(vertex_id v) const { return atomic_load(&marked[v]) == 0; }
};

// Returns true for every edge: the output needs remove_duplicates to be a
// set, which makes it the dedup stress functor.
struct always_f {
  bool update(vertex_id, vertex_id) const { return true; }
  bool update_atomic(vertex_id, vertex_id) const { return true; }
  bool cond(vertex_id) const { return true; }
};

std::vector<vertex_id> oracle_step(const graph& g,
                                   const std::vector<vertex_id>& frontier,
                                   const std::vector<uint8_t>& marked) {
  std::set<vertex_id> out;
  for (vertex_id u : frontier)
    for (vertex_id v : g.out_neighbors(u))
      if (!marked[v]) out.insert(v);
  return {out.begin(), out.end()};
}

std::vector<vertex_id> run_mark_step(const graph& g,
                                     const std::vector<vertex_id>& frontier,
                                     std::vector<uint8_t> marked,
                                     const edge_map_options& base_opts,
                                     traversal strategy) {
  vertex_subset vs(g.num_vertices(), frontier);
  edge_map_options opts = base_opts;
  opts.strategy = strategy;
  auto out = edge_map(g, vs, mark_f{marked.data()}, opts);
  return out.to_sorted_vector();
}

// BFS levels via edge_map with the given options; compared against the
// sequential baseline.
std::vector<int64_t> edge_map_bfs_levels(const graph& g, vertex_id source,
                                         edge_map_options opts) {
  std::vector<int64_t> level(g.num_vertices(), -1);
  level[source] = 0;
  struct level_f {
    int64_t* level;
    int64_t round;
    bool update(vertex_id, vertex_id v) const {
      if (level[v] == -1) {
        level[v] = round;
        return true;
      }
      return false;
    }
    bool update_atomic(vertex_id, vertex_id v) const {
      return compare_and_swap(&level[v], int64_t{-1}, round);
    }
    bool cond(vertex_id v) const { return atomic_load(&level[v]) == -1; }
  };
  vertex_subset frontier(g.num_vertices(), source);
  int64_t round = 0;
  while (!frontier.empty()) {
    round++;
    frontier = edge_map(g, frontier, level_f{level.data(), round}, opts);
  }
  return level;
}

}  // namespace

// ---------------------------------------------------------------------------
// Single-step oracle equivalence on power-law and uniform graphs.

class EdgeMapBlockedRandomGraphs : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EdgeMapBlockedRandomGraphs, BlockedMatchesOracleAndLegacy) {
  uint64_t seed = GetParam();
  for (const graph& g : {gen::rmat_graph(10, 1 << 13, seed),
                         gen::random_graph(1 << 10, 8, seed + 50)}) {
    const vertex_id n = g.num_vertices();
    rng r(seed * 31 + 1);
    std::vector<uint8_t> marked(n, 0);
    std::vector<vertex_id> frontier;
    for (vertex_id v = 0; v < n; v++) {
      if (r.uniform(v) < 0.2) {
        marked[v] = 1;
        if (r.uniform(v + n) < 0.5) frontier.push_back(v);
      }
    }
    auto expect = oracle_step(g, frontier, marked);

    edge_map_options blocked;  // default: blocked = true
    edge_map_options legacy;
    legacy.blocked = false;
    for (bool dedup : {false, true}) {
      blocked.remove_duplicates = dedup;
      legacy.remove_duplicates = dedup;
      EXPECT_EQ(run_mark_step(g, frontier, marked, blocked, traversal::sparse),
                expect)
          << "blocked sparse, dedup=" << dedup;
      EXPECT_EQ(run_mark_step(g, frontier, marked, legacy, traversal::sparse),
                expect)
          << "legacy sparse, dedup=" << dedup;
    }
    // Bitmap-consuming dense traversals against the same oracle.
    EXPECT_EQ(run_mark_step(g, frontier, marked, blocked, traversal::dense),
              expect);
    EXPECT_EQ(
        run_mark_step(g, frontier, marked, blocked, traversal::dense_forward),
        expect);
  }
}

TEST_P(EdgeMapBlockedRandomGraphs, MultiRoundBfsMatchesBaseline) {
  uint64_t seed = GetParam();
  auto g = gen::rmat_graph(10, 1 << 13, seed + 7);
  auto expect = baseline::bfs_levels(g, 0);

  edge_map_options blocked_sparse;
  blocked_sparse.strategy = traversal::sparse;
  EXPECT_EQ(edge_map_bfs_levels(g, 0, blocked_sparse), expect);

  edge_map_options legacy_sparse;
  legacy_sparse.strategy = traversal::sparse;
  legacy_sparse.blocked = false;
  EXPECT_EQ(edge_map_bfs_levels(g, 0, legacy_sparse), expect);

  edge_map_options dense;
  dense.strategy = traversal::dense;
  EXPECT_EQ(edge_map_bfs_levels(g, 0, dense), expect);

  edge_map_options fwd;
  fwd.strategy = traversal::dense_forward;
  EXPECT_EQ(edge_map_bfs_levels(g, 0, fwd), expect);

  edge_map_options hybrid;  // automatic, with an explicit scratch
  edge_map_scratch scratch;
  hybrid.scratch = &scratch;
  EXPECT_EQ(edge_map_bfs_levels(g, 0, hybrid), expect);
}

TEST_P(EdgeMapBlockedRandomGraphs, DedupOutputIsASet) {
  uint64_t seed = GetParam();
  auto g = gen::rmat_graph(9, 1 << 12, seed + 13);
  std::vector<vertex_id> frontier;
  for (vertex_id v = 0; v < g.num_vertices(); v += 3) frontier.push_back(v);
  vertex_subset vs(g.num_vertices(), frontier);
  edge_map_options opts;
  opts.strategy = traversal::sparse;
  opts.remove_duplicates = true;
  auto out = edge_map(g, vs, always_f{}, opts);
  auto ids = out.to_sorted_vector();
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
  // Dedup output == set of out-neighbors of the frontier.
  std::set<vertex_id> expect;
  for (vertex_id u : frontier)
    for (vertex_id v : g.out_neighbors(u)) expect.insert(v);
  EXPECT_EQ(ids, std::vector<vertex_id>(expect.begin(), expect.end()));
}

TEST_P(EdgeMapBlockedRandomGraphs, NoOutputAppliesUpdates) {
  uint64_t seed = GetParam();
  auto g = gen::random_graph(1 << 9, 6, seed + 23);
  const vertex_id n = g.num_vertices();
  std::vector<vertex_id> frontier;
  for (vertex_id v = 0; v < n; v += 5) frontier.push_back(v);

  std::vector<uint8_t> with(n, 0), without(n, 0);
  {
    vertex_subset vs(n, frontier);
    edge_map_options opts;
    opts.strategy = traversal::sparse;
    edge_map(g, vs, mark_f{with.data()}, opts);
  }
  {
    vertex_subset vs(n, frontier);
    edge_map_options opts;
    opts.strategy = traversal::sparse;
    opts.produce_output = false;
    edge_map(g, vs, mark_f{without.data()}, opts);
  }
  EXPECT_EQ(with, without);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeMapBlockedRandomGraphs,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Bitmap representation round-trips.

TEST(EdgeMapBlockedBitmap, RoundTripsPreserveSizeAndMembership) {
  const vertex_id n = 1000;  // not a multiple of 64: tail word exercised
  rng r(42);
  std::vector<vertex_id> ids;
  for (vertex_id v = 0; v < n; v++)
    if (r.uniform(v) < 0.3) ids.push_back(v);

  vertex_subset vs(n, ids);
  const size_t m = vs.size();
  auto sorted = vs.to_sorted_vector();

  // sparse -> bitmap -> dense -> sparse -> dense -> bitmap, checking after
  // every hop.
  vs.to_bitmap();
  ASSERT_TRUE(vs.is_bitmap());
  EXPECT_EQ(vs.size(), m);
  EXPECT_EQ(vs.to_sorted_vector(), sorted);
  for (vertex_id v : ids) EXPECT_TRUE(vs.contains(v));

  vs.to_dense();
  ASSERT_TRUE(vs.is_dense());
  EXPECT_EQ(vs.size(), m);
  EXPECT_EQ(vs.to_sorted_vector(), sorted);

  vs.to_sparse();
  ASSERT_TRUE(vs.is_sparse());
  EXPECT_EQ(vs.size(), m);
  EXPECT_EQ(vs.to_sorted_vector(), sorted);

  vs.to_dense();
  vs.to_bitmap();
  ASSERT_TRUE(vs.is_bitmap());
  EXPECT_EQ(vs.size(), m);
  EXPECT_EQ(vs.to_sorted_vector(), sorted);
  vs.to_sparse();
  EXPECT_EQ(vs.to_sorted_vector(), sorted);
}

TEST(EdgeMapBlockedBitmap, FromBitmapMasksTailAndCounts) {
  const vertex_id n = 70;  // 2 words, 6 valid bits in the tail word
  std::vector<uint64_t> words(vertex_subset::num_bitmap_words(n), ~uint64_t{0});
  auto vs = vertex_subset::from_bitmap(n, std::move(words));
  EXPECT_EQ(vs.size(), static_cast<size_t>(n));  // tail bits masked off
  EXPECT_TRUE(vs.contains(69));
  EXPECT_FALSE(vs.contains(70));
  size_t seen = 0;
  vs.for_each([&](vertex_id) { write_add(&seen, size_t{1}); });
  EXPECT_EQ(seen, static_cast<size_t>(n));
}

TEST(EdgeMapBlockedBitmap, DenseTraversalReturnsBitmap) {
  auto g = gen::rmat_graph(9, 1 << 12, 4);
  std::vector<uint8_t> marked(g.num_vertices(), 0);
  vertex_subset all = vertex_subset::all(g.num_vertices());
  edge_map_options opts;
  opts.strategy = traversal::dense;
  auto out = edge_map(g, all, mark_f{marked.data()}, opts);
  EXPECT_TRUE(out.is_bitmap());
  // And the bitmap output feeds straight back into every strategy.
  std::vector<uint8_t> marked2(marked);
  auto out2 = edge_map(g, out, mark_f{marked2.data()});
  EXPECT_EQ(out2.universe_size(), g.num_vertices());
}

// ---------------------------------------------------------------------------
// Block accounting and scratch reuse.

TEST(EdgeMapBlocked, HubFrontierSplitsAcrossBlocks) {
  // Star center: one frontier vertex with n-1 out-edges. With n-1 well
  // above kEdgeBlockSize, the single hub must span multiple blocks.
  const vertex_id n = 3 * kEdgeBlockSize;
  auto g = gen::star_graph(n);
  std::vector<uint8_t> marked(n, 0);
  marked[0] = 1;
  vertex_subset frontier(n, vertex_id{0});
  edge_map_stats stats;
  edge_map_options opts;
  opts.strategy = traversal::sparse;
  opts.stats = &stats;
  auto out = edge_map(g, frontier, mark_f{marked.data()}, opts);
  EXPECT_EQ(out.size(), static_cast<size_t>(n - 1));
  EXPECT_GE(stats.blocks, 3u);
  EXPECT_GT(stats.scratch_bytes, 0u);
}

TEST(EdgeMapBlocked, SteadyStateRoundsReuseScratchBuffers) {
  // Warm-up BFS sizes the scratch to the largest round; a second BFS over
  // the same graph must then leave every scratch buffer's data pointer (and
  // capacity) untouched — i.e. steady-state rounds allocate no traversal
  // working memory.
  auto g = gen::rmat_graph(11, 1 << 14, 6);
  edge_map_scratch scratch;
  edge_map_options opts;
  opts.strategy = traversal::sparse;  // every round through the blocked kernel
  opts.remove_duplicates = true;      // winner array exercised too
  opts.scratch = &scratch;
  auto warm = edge_map_bfs_levels(g, 0, opts);

  const edge_id* offsets_ptr = scratch.offsets.data();
  const edge_id* counts_ptr = scratch.block_counts.data();
  const vertex_id* buffer_ptr = scratch.block_buffer.data();
  const edge_id* winner_ptr = scratch.winner.data();
  const size_t bytes = scratch.bytes();
  ASSERT_GT(bytes, 0u);

  auto again = edge_map_bfs_levels(g, 0, opts);
  EXPECT_EQ(again, warm);
  EXPECT_EQ(scratch.offsets.data(), offsets_ptr);
  EXPECT_EQ(scratch.block_counts.data(), counts_ptr);
  EXPECT_EQ(scratch.block_buffer.data(), buffer_ptr);
  EXPECT_EQ(scratch.winner.data(), winner_ptr);
  EXPECT_EQ(scratch.bytes(), bytes);
}

TEST(EdgeMapBlocked, WinnerArrayIsResetAfterDedupRound) {
  auto g = gen::rmat_graph(9, 1 << 12, 8);
  std::vector<vertex_id> frontier;
  for (vertex_id v = 0; v < g.num_vertices(); v += 2) frontier.push_back(v);
  vertex_subset vs(g.num_vertices(), frontier);
  edge_map_scratch scratch;
  edge_map_options opts;
  opts.strategy = traversal::sparse;
  opts.remove_duplicates = true;
  opts.scratch = &scratch;
  auto out = edge_map(g, vs, always_f{}, opts);
  EXPECT_FALSE(out.empty());
  for (edge_id w : scratch.winner) EXPECT_EQ(w, kNoEdge);
}

TEST(EdgeMapBlocked, ScratchScopeInstallsAndNests) {
  EXPECT_EQ(current_edge_map_scratch(), nullptr);
  edge_map_scratch outer, inner;
  {
    edge_map_scratch_scope a(&outer);
    EXPECT_EQ(current_edge_map_scratch(), &outer);
    {
      edge_map_scratch_scope b(&inner);
      EXPECT_EQ(current_edge_map_scratch(), &inner);
    }
    EXPECT_EQ(current_edge_map_scratch(), &outer);

    // An edge_map run under the scope must use the installed scratch.
    auto g = gen::rmat_graph(9, 1 << 12, 9);
    std::vector<uint8_t> marked(g.num_vertices(), 0);
    vertex_subset frontier(g.num_vertices(), vertex_id{0});
    edge_map_options opts;
    opts.strategy = traversal::sparse;
    edge_map(g, frontier, mark_f{marked.data()}, opts);
    EXPECT_GT(outer.bytes(), 0u);
  }
  EXPECT_EQ(current_edge_map_scratch(), nullptr);
}

TEST(EdgeMapBlocked, StatsReportScratchBytesWithExplicitScratch) {
  auto g = gen::rmat_graph(9, 1 << 12, 10);
  edge_map_scratch scratch;
  std::vector<uint8_t> marked(g.num_vertices(), 0);
  vertex_subset frontier(g.num_vertices(), vertex_id{0});
  edge_map_stats stats;
  edge_map_options opts;
  opts.strategy = traversal::sparse;
  opts.scratch = &scratch;
  opts.stats = &stats;
  edge_map(g, frontier, mark_f{marked.data()}, opts);
  EXPECT_EQ(stats.scratch_bytes, scratch.bytes());
  EXPECT_GE(stats.blocks, 1u);
}

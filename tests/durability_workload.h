// Deterministic workload shared by the durability crash harness
// (durability_crash_child.cc, killed mid-write) and the recovering parent
// (test_durability.cc): both sides regenerate the same base graph and the
// same batch sequence from nothing but a seed, so the parent can compute
// the exact edge set the child held after its last acked batch and compare
// it edge-for-edge against what recovery reconstructs.
#pragma once

#include <cstdint>
#include <vector>

#include "dynamic/update_batch.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace durability_workload {

inline constexpr ligra::vertex_id kN = 200;
inline constexpr uint64_t kGraphSeed = 7;

// The graph every durable store in the harness starts from.
inline ligra::graph base_graph() {
  return ligra::gen::random_graph(kN, /*degree=*/4, kGraphSeed);
}

// Batch `k` (0-based): a mix of inserts and deletes drawn from stream k.
// Self-loops and duplicates are fine — normalization drops them — but the
// same k always yields the same batch.
inline ligra::dynamic::update_batch make_batch(uint64_t k) {
  ligra::rng r(0xD00Du ^ k);
  ligra::dynamic::update_batch b;
  const size_t n_ins = 3 + r.bounded(0, 6);
  const size_t n_del = 1 + r.bounded(1, 4);
  for (size_t i = 0; i < n_ins; i++)
    b.inserts.emplace_back(
        static_cast<ligra::vertex_id>(r.bounded(100 + 2 * i, kN)),
        static_cast<ligra::vertex_id>(r.bounded(101 + 2 * i, kN)));
  for (size_t i = 0; i < n_del; i++)
    b.deletes.emplace_back(
        static_cast<ligra::vertex_id>(r.bounded(500 + 2 * i, kN)),
        static_cast<ligra::vertex_id>(r.bounded(501 + 2 * i, kN)));
  // An edge in both lists would be rejected by normalize_batch; drop such
  // deletes deterministically.
  auto canon = [](ligra::edge e) {
    return e.u < e.v ? std::make_pair(e.u, e.v) : std::make_pair(e.v, e.u);
  };
  std::vector<ligra::edge> dels;
  for (const ligra::edge& d : b.deletes) {
    bool conflict = false;
    for (const ligra::edge& i : b.inserts)
      if (canon(i) == canon(d)) conflict = true;
    if (!conflict) dels.push_back(d);
  }
  b.deletes = std::move(dels);
  return b;
}

}  // namespace durability_workload

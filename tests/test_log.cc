// Observability plumbing tests (docs/OBSERVABILITY.md): trace ids (hex
// round trips, mint uniqueness, thread-local scopes), the structured
// logger (levels, text/JSON formats, field typing, rate limiting with
// error bypass, trace-id attachment, concurrent writers), the trace
// retention ring (insert/find/evict, index JSON, concurrent access — the
// TSan target), and the flight recorder ring.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_store.h"

namespace obs = ligra::obs;

namespace {

// A logger writing into an anonymous tmpfile; contents() reads it back.
struct capturing_logger {
  obs::logger log;
  std::FILE* f;

  capturing_logger() : f(std::tmpfile()) {
    EXPECT_NE(f, nullptr);
    log.set_sink(f);
  }
  ~capturing_logger() {
    log.set_sink(nullptr);
    if (f != nullptr) std::fclose(f);
  }

  std::string contents() {
    std::fflush(f);
    std::string out;
    long end = std::ftell(f);
    if (end <= 0) return out;
    out.resize(static_cast<size_t>(end));
    std::rewind(f);
    size_t got = std::fread(out.data(), 1, out.size(), f);
    out.resize(got);
    std::fseek(f, 0, SEEK_END);
    return out;
  }
};

}  // namespace

// --- trace ids --------------------------------------------------------------

TEST(TraceId, ZeroIsAbsentAndHexRoundTrips) {
  obs::trace_id zero;
  EXPECT_FALSE(zero.valid());

  obs::trace_id id{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_TRUE(id.valid());
  const std::string hex = id.to_hex();
  EXPECT_EQ(hex.size(), 32u);
  EXPECT_EQ(hex, "0123456789abcdeffedcba9876543210");
  auto back = obs::trace_id::from_hex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, id);

  // Uppercase input parses too (URLs get pasted around).
  auto upper = obs::trace_id::from_hex("0123456789ABCDEFFEDCBA9876543210");
  ASSERT_TRUE(upper.has_value());
  EXPECT_EQ(*upper, id);
}

TEST(TraceId, FromHexRejectsMalformedInput) {
  EXPECT_FALSE(obs::trace_id::from_hex("").has_value());
  EXPECT_FALSE(obs::trace_id::from_hex("abc").has_value());
  EXPECT_FALSE(obs::trace_id::from_hex(std::string(31, 'a')).has_value());
  EXPECT_FALSE(obs::trace_id::from_hex(std::string(33, 'a')).has_value());
  std::string bad(32, 'a');
  bad[7] = 'g';  // not hex
  EXPECT_FALSE(obs::trace_id::from_hex(bad).has_value());
  bad[7] = ' ';
  EXPECT_FALSE(obs::trace_id::from_hex(bad).has_value());
}

TEST(TraceId, MintNeverReturnsZeroAndNeverCollides) {
  constexpr int kThreads = 4, kPerThread = 2000;
  std::vector<std::vector<obs::trace_id>> minted(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      minted[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; i++)
        minted[t].push_back(obs::trace_id::mint());
    });
  }
  for (auto& th : threads) th.join();

  std::set<std::pair<uint64_t, uint64_t>> seen;
  for (const auto& v : minted) {
    for (const auto& id : v) {
      EXPECT_TRUE(id.valid());
      EXPECT_TRUE(seen.insert({id.hi, id.lo}).second) << "duplicate mint";
    }
  }
  EXPECT_EQ(seen.size(), size_t{kThreads} * kPerThread);
}

TEST(TraceId, ScopeInstallsAndRestoresNested) {
  EXPECT_FALSE(obs::current_trace_id().valid());
  obs::trace_id outer{1, 2}, inner{3, 4};
  {
    obs::trace_id_scope a(outer);
    EXPECT_EQ(obs::current_trace_id(), outer);
    {
      obs::trace_id_scope b(inner);
      EXPECT_EQ(obs::current_trace_id(), inner);
    }
    EXPECT_EQ(obs::current_trace_id(), outer);
  }
  EXPECT_FALSE(obs::current_trace_id().valid());
}

// --- structured logger ------------------------------------------------------

TEST(Log, ParseLogLevel) {
  obs::log_level l;
  EXPECT_TRUE(obs::parse_log_level("debug", &l));
  EXPECT_EQ(l, obs::log_level::debug);
  EXPECT_TRUE(obs::parse_log_level("info", &l));
  EXPECT_EQ(l, obs::log_level::info);
  EXPECT_TRUE(obs::parse_log_level("warn", &l));
  EXPECT_EQ(l, obs::log_level::warn);
  EXPECT_TRUE(obs::parse_log_level("error", &l));
  EXPECT_EQ(l, obs::log_level::error);
  EXPECT_TRUE(obs::parse_log_level("off", &l));
  EXPECT_EQ(l, obs::log_level::off);
  EXPECT_FALSE(obs::parse_log_level("verbose", &l));
  EXPECT_FALSE(obs::parse_log_level("", &l));
}

TEST(Log, LevelThresholdSuppressesCheaply) {
  capturing_logger cl;
  cl.log.set_level(obs::log_level::warn);
  cl.log.write(obs::log_level::debug, "t", "too quiet");
  cl.log.write(obs::log_level::info, "t", "still too quiet");
  cl.log.write(obs::log_level::warn, "t", "loud enough");
  EXPECT_EQ(cl.log.emitted(), 1u);
  auto out = cl.contents();
  EXPECT_EQ(out.find("too quiet"), std::string::npos);
  EXPECT_NE(out.find("loud enough"), std::string::npos);

  cl.log.set_level(obs::log_level::off);
  cl.log.write(obs::log_level::error, "t", "even errors are off");
  EXPECT_EQ(cl.log.emitted(), 1u);
}

TEST(Log, TextFormatCarriesComponentMessageAndFields) {
  capturing_logger cl;
  cl.log.write(obs::log_level::warn, "wal", "append failed",
               {{"path", "/tmp/x"}, {"attempt", 3}, {"fsync", true}});
  auto out = cl.contents();
  EXPECT_NE(out.find("warn"), std::string::npos);
  EXPECT_NE(out.find("wal:"), std::string::npos);
  EXPECT_NE(out.find("append failed"), std::string::npos);
  EXPECT_NE(out.find("path=/tmp/x"), std::string::npos);
  EXPECT_NE(out.find("attempt=3"), std::string::npos);
  EXPECT_NE(out.find("fsync=true"), std::string::npos);
}

TEST(Log, JsonFormatTypesAndEscapes) {
  capturing_logger cl;
  cl.log.set_json(true);
  cl.log.write(obs::log_level::info, "net", "client said \"hi\"\n",
               {{"port", 7471},
                {"rate", 0.25},
                {"peer", "10.0.0.1"},
                {"ok", false}});
  auto out = cl.contents();
  EXPECT_NE(out.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(out.find("\"component\":\"net\""), std::string::npos);
  // Message body escaped: embedded quotes and the newline.
  EXPECT_NE(out.find("client said \\\"hi\\\"\\n"), std::string::npos);
  // Numbers and bools unquoted, strings quoted.
  EXPECT_NE(out.find("\"port\":7471"), std::string::npos);
  EXPECT_NE(out.find("\"rate\":0.250"), std::string::npos);
  EXPECT_NE(out.find("\"peer\":\"10.0.0.1\""), std::string::npos);
  EXPECT_NE(out.find("\"ok\":false"), std::string::npos);
  EXPECT_EQ(out.find("\"trace_id\""), std::string::npos);  // none installed
}

TEST(Log, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(obs::json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Log, AttachesCurrentTraceId) {
  capturing_logger cl;
  obs::trace_id id{0xaaULL, 0xbbULL};
  {
    obs::trace_id_scope scope(id);
    cl.log.write(obs::log_level::warn, "engine", "inside a query");
  }
  cl.log.write(obs::log_level::warn, "engine", "outside any query");
  auto out = cl.contents();
  auto first = out.find("trace=" + id.to_hex());
  EXPECT_NE(first, std::string::npos);
  EXPECT_EQ(out.find("trace=", first + 1), std::string::npos)
      << "the scope ended; the second line must not carry the id";
}

TEST(Log, RateLimitDropsAndErrorsBypass) {
  capturing_logger cl;
  obs::metrics_registry metrics;
  cl.log.set_metrics(&metrics);
  cl.log.set_rate_limit(/*per_sec=*/1.0, /*burst=*/3.0);
  for (int i = 0; i < 50; i++)
    cl.log.write(obs::log_level::warn, "t", "spam " + std::to_string(i));
  EXPECT_GT(cl.log.dropped(), 0u);
  EXPECT_LT(cl.log.emitted(), 50u);
  EXPECT_EQ(metrics.get_counter("engine_log_dropped_total").value(),
            cl.log.dropped());

  // Errors are never limited: the post-outage forensics survive the storm.
  const uint64_t before = cl.log.emitted();
  for (int i = 0; i < 20; i++)
    cl.log.write(obs::log_level::error, "t", "err " + std::to_string(i));
  EXPECT_EQ(cl.log.emitted(), before + 20);
  cl.log.set_metrics(nullptr);
}

TEST(Log, ConcurrentWritersDoNotInterleaveOrRace) {
  capturing_logger cl;
  constexpr int kThreads = 4, kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++)
        cl.log.write(obs::log_level::warn, "t",
                     "w" + std::to_string(t) + "-" + std::to_string(i),
                     {{"i", i}});
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cl.log.emitted(), uint64_t{kThreads} * kPerThread);
  // Every line is whole: count newlines == lines emitted.
  auto out = cl.contents();
  size_t newlines = 0;
  for (char c : out) newlines += c == '\n';
  EXPECT_EQ(newlines, size_t{kThreads} * kPerThread);
}

// --- trace store ------------------------------------------------------------

namespace {

obs::trace_record make_record(uint64_t lo, const std::string& outcome = "ok") {
  obs::trace_record r;
  r.id = {0x11, lo};
  r.kind = "bfs";
  r.graph = "g";
  r.outcome = outcome;
  r.exec_micros = 42.0;
  return r;
}

}  // namespace

TEST(TraceStore, InsertFindAndRecent) {
  obs::trace_store store(8);
  EXPECT_EQ(store.capacity(), 8u);
  EXPECT_FALSE(store.find({1, 2}).has_value());

  for (uint64_t i = 1; i <= 5; i++) store.insert(make_record(i));
  EXPECT_EQ(store.retained(), 5u);
  EXPECT_EQ(store.evicted(), 0u);

  auto hit = store.find({0x11, 3});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->id.lo, 3u);
  EXPECT_EQ(hit->kind, "bfs");
  EXPECT_GT(hit->seq, 0u);

  auto recent = store.recent();
  ASSERT_EQ(recent.size(), 5u);
  // Newest first.
  EXPECT_EQ(recent[0].id.lo, 5u);
  EXPECT_EQ(recent[4].id.lo, 1u);
  EXPECT_EQ(store.recent(2).size(), 2u);
}

TEST(TraceStore, RingEvictsOldestAndCounts) {
  obs::metrics_registry metrics;
  obs::trace_store store(4, &metrics);
  for (uint64_t i = 1; i <= 10; i++) store.insert(make_record(i));
  EXPECT_EQ(store.retained(), 10u);
  EXPECT_EQ(store.evicted(), 6u);
  EXPECT_EQ(metrics.get_counter("engine_traces_retained_total").value(), 10u);
  EXPECT_EQ(metrics.get_counter("engine_traces_evicted_total").value(), 6u);
  // The oldest are gone, the newest remain.
  EXPECT_FALSE(store.find({0x11, 1}).has_value());
  EXPECT_TRUE(store.find({0x11, 10}).has_value());
  EXPECT_EQ(store.recent().size(), 4u);
}

TEST(TraceStore, DuplicateIdsResolveToTheNewestRecord) {
  obs::trace_store store(8);
  auto first = make_record(7, "ok");
  auto second = make_record(7, "deadline");
  store.insert(first);
  store.insert(second);
  auto hit = store.find({0x11, 7});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->outcome, "deadline");
}

TEST(TraceStore, JsonSummariesAndFullTrace) {
  obs::trace_store store(8);
  auto r = make_record(9, "deadline");
  r.error = "queued past deadline";
  r.retry_after_ms = 40;
  r.trace_json = "{\"rounds\":[],\"spans\":[]}";
  store.insert(r);

  auto summary = r.to_json(/*full=*/false);
  EXPECT_NE(summary.find(r.id.to_hex()), std::string::npos);
  EXPECT_NE(summary.find("\"outcome\":\"deadline\""), std::string::npos);
  EXPECT_NE(summary.find("\"retry_after_ms\":40"), std::string::npos);
  EXPECT_EQ(summary.find("\"trace\""), std::string::npos);

  auto full = r.to_json(/*full=*/true);
  EXPECT_NE(full.find("\"trace\":{\"rounds\""), std::string::npos);

  auto index = store.render_index_json();
  EXPECT_NE(index.find("\"traces\":["), std::string::npos);
  EXPECT_NE(index.find("\"retained\":1"), std::string::npos);
  EXPECT_NE(index.find("\"capacity\":8"), std::string::npos);
}

// The TSan target: inserts claiming slots by atomic ticket while readers
// scan — no lock ordering to get wrong, but plenty of racy-by-construction
// access patterns to prove clean.
TEST(TraceStore, ConcurrentInsertFindAndRecent) {
  obs::trace_store store(16);
  constexpr int kWriters = 3, kReaders = 2, kPerWriter = 500;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; i++) {
        obs::trace_record r;
        r.id = {static_cast<uint64_t>(w + 1), static_cast<uint64_t>(i + 1)};
        r.kind = "cc";
        r.graph = "g";
        store.insert(std::move(r));
      }
    });
  }
  for (int rd = 0; rd < kReaders; rd++) {
    threads.emplace_back([&] {
      while (!stop.load()) {
        auto recent = store.recent(8);
        for (const auto& rec : recent) EXPECT_TRUE(rec.id.valid());
        store.find({2, 100});
        store.render_index_json(4);
      }
    });
  }
  for (int w = 0; w < kWriters; w++) threads[static_cast<size_t>(w)].join();
  stop.store(true);
  for (size_t t = kWriters; t < threads.size(); t++) threads[t].join();
  EXPECT_EQ(store.retained(), uint64_t{kWriters} * kPerWriter);
  EXPECT_EQ(store.recent().size(), store.capacity());
}

// --- flight recorder --------------------------------------------------------

TEST(FlightRecorder, RecordsWrapNewestFirst) {
  obs::flight_recorder rec(4);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_TRUE(rec.snapshot().empty());

  for (int i = 1; i <= 6; i++) {
    obs::flight_entry e;
    e.id = {1, static_cast<uint64_t>(i)};
    e.set_kind("bfs");
    e.set_graph("g");
    e.set_outcome(i == 6 ? "deadline" : "ok");
    e.exec_micros = i * 10.0;
    rec.record(e);
  }
  EXPECT_EQ(rec.recorded(), 6u);
  auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].id.lo, 6u);  // newest first
  EXPECT_EQ(snap[3].id.lo, 3u);  // 1 and 2 overwritten
  EXPECT_STREQ(snap[0].outcome, "deadline");
  EXPECT_STREQ(snap[0].kind, "bfs");
}

TEST(FlightRecorder, FixedWidthFieldsTruncateSafely) {
  obs::flight_entry e;
  e.set_graph("a-very-long-graph-name-that-exceeds-the-inline-field");
  e.set_kind("pagerank_topk_extra");
  EXPECT_EQ(std::string(e.graph).size(), sizeof(e.graph) - 1);
  EXPECT_EQ(std::string(e.kind).size(), sizeof(e.kind) - 1);
}

TEST(FlightRecorder, ToJsonShape) {
  obs::flight_recorder rec(8);
  obs::flight_entry e;
  e.id = {0xde, 0xad};
  e.set_kind("sssp");
  e.set_graph("road");
  e.set_outcome("ok");
  e.cache_hit = true;
  rec.record(e);
  auto json = rec.to_json();
  EXPECT_NE(json.find("\"entries\":["), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":1"), std::string::npos);
  EXPECT_NE(json.find("\"capacity\":8"), std::string::npos);
  EXPECT_NE(json.find(e.id.to_hex()), std::string::npos);
  EXPECT_NE(json.find("\"cache_hit\":true"), std::string::npos);
  // max_entries caps the dump.
  obs::flight_entry e2;
  e2.id = {1, 2};
  rec.record(e2);
  auto capped = rec.to_json(1);
  EXPECT_EQ(capped.find(e.id.to_hex()), std::string::npos);
  EXPECT_NE(capped.find(e2.id.to_hex()), std::string::npos);
}

TEST(FlightRecorder, ConcurrentRecordAndSnapshot) {
  obs::flight_recorder rec(32);
  constexpr int kWriters = 3, kPerWriter = 1000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; i++) {
        obs::flight_entry e;
        e.id = {static_cast<uint64_t>(w + 1), static_cast<uint64_t>(i + 1)};
        e.set_kind("bfs");
        e.set_outcome("ok");
        rec.record(e);
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load()) {
      auto snap = rec.snapshot();
      for (const auto& e : snap) EXPECT_NE(e.seq, 0u);
      rec.to_json(8);
    }
  });
  for (int w = 0; w < kWriters; w++) threads[static_cast<size_t>(w)].join();
  stop.store(true);
  threads.back().join();
  EXPECT_EQ(rec.recorded(), uint64_t{kWriters} * kPerWriter);
  EXPECT_EQ(rec.snapshot().size(), rec.capacity());
}

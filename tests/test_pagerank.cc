// Tests for PageRank and PageRank-Delta (paper §4.5): agreement with the
// serial baseline, rank-sum conservation, convergence behaviour, and the
// paper's claim that Delta's active set shrinks monotonically toward
// convergence (experiment F4's premise).
#include "apps/pagerank.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "baseline/serial.h"
#include "graph/generators.h"

using namespace ligra;

namespace {

double l1_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0;
  for (size_t i = 0; i < a.size(); i++) d += std::fabs(a[i] - b[i]);
  return d;
}

}  // namespace

class PrGraphs : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrGraphs, MatchesSerialBaselineExactly) {
  // Same algorithm, same float order per vertex (in-neighbor CSR order in
  // dense mode), so agreement should be near machine precision.
  uint64_t seed = GetParam();
  auto g = gen::rmat_graph(9, 1 << 12, seed);
  auto par = apps::pagerank(g);
  auto ser = baseline::pagerank(g);
  ASSERT_EQ(par.rank.size(), ser.size());
  EXPECT_LT(l1_distance(par.rank, ser), 1e-10);
}

TEST_P(PrGraphs, DirectedGraphMatchesBaseline) {
  uint64_t seed = GetParam();
  auto g = gen::rmat_digraph(9, 1 << 12, seed + 10);
  auto par = apps::pagerank(g);
  auto ser = baseline::pagerank(g);
  EXPECT_LT(l1_distance(par.rank, ser), 1e-10);
}

TEST_P(PrGraphs, DeltaConvergesToPowerIteration) {
  uint64_t seed = GetParam();
  auto g = gen::rmat_graph(9, 1 << 12, seed + 20);
  apps::pagerank_options exact_opts;
  exact_opts.tolerance = 1e-12;
  exact_opts.max_iterations = 300;
  auto exact = apps::pagerank(g, exact_opts);
  apps::pagerank_delta_options d;
  d.tolerance = 1e-9;
  d.local_tolerance = 1e-4;
  d.max_iterations = 300;
  auto delta = apps::pagerank_delta(g, d);
  EXPECT_LT(l1_distance(delta.rank, exact.rank), 1e-2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrGraphs, ::testing::Values(1, 2, 3, 4));

TEST(Pagerank, RankSumIsOneOnSinklessGraph) {
  // Symmetric graphs have no sinks: total rank mass is conserved at 1.
  auto g = gen::grid3d_graph(6);
  auto result = apps::pagerank(g);
  double sum = std::accumulate(result.rank.begin(), result.rank.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Pagerank, UniformOnRegularGraph) {
  // Every vertex of a cycle has the same rank by symmetry.
  auto g = gen::cycle_graph(100);
  auto result = apps::pagerank(g);
  for (vertex_id v = 0; v < 100; v++)
    EXPECT_NEAR(result.rank[v], 0.01, 1e-9);
}

TEST(Pagerank, StarCenterOutranksLeaves) {
  auto g = gen::star_graph(50);
  auto result = apps::pagerank(g);
  for (vertex_id v = 1; v < 50; v++)
    EXPECT_GT(result.rank[0], result.rank[v] * 5);
}

TEST(Pagerank, ConvergesWithinMaxIterations) {
  auto g = gen::rmat_graph(10, 1 << 13, 5);
  apps::pagerank_options opts;
  opts.tolerance = 1e-8;
  opts.max_iterations = 200;
  auto result = apps::pagerank(g, opts);
  EXPECT_LT(result.num_iterations, 200u);
  EXPECT_LT(result.final_residual, 1e-8);
}

TEST(Pagerank, SingleIterationMatchesClosedForm) {
  // One iteration from the uniform start on a d-regular graph leaves ranks
  // uniform (the Table 2 configuration uses 1 iteration).
  auto g = gen::cycle_graph(10);
  apps::pagerank_options opts;
  opts.max_iterations = 1;
  auto result = apps::pagerank(g, opts);
  EXPECT_EQ(result.num_iterations, 1u);
  for (vertex_id v = 0; v < 10; v++) EXPECT_NEAR(result.rank[v], 0.1, 1e-12);
}

TEST(PagerankDelta, ActiveSetShrinks) {
  auto g = gen::rmat_graph(11, 1 << 14, 6);
  apps::pagerank_delta_options opts;
  opts.max_iterations = 50;
  auto result = apps::pagerank_delta(g, opts);
  ASSERT_GE(result.active_history.size(), 3u);
  EXPECT_EQ(result.active_history[0], g.num_vertices());  // starts full
  // Strictly fewer active vertices by the last recorded round.
  EXPECT_LT(result.active_history.back(), result.active_history.front());
}

TEST(PagerankDelta, FewerTotalEdgeTraversalsThanPowerIteration) {
  // The Delta variant's whole point (F4): summed active sets across rounds
  // are far below (rounds * n).
  auto g = gen::rmat_graph(11, 1 << 14, 7);
  apps::pagerank_delta_options opts;
  opts.tolerance = 1e-7;
  auto result = apps::pagerank_delta(g, opts);
  size_t total_active = 0;
  for (size_t a : result.active_history) total_active += a;
  size_t power_equivalent = result.num_iterations * g.num_vertices();
  EXPECT_LT(total_active, power_equivalent);
}

TEST(PagerankDelta, EmptyGraph) {
  graph g;
  auto result = apps::pagerank_delta(g);
  EXPECT_TRUE(result.rank.empty());
}

TEST(Pagerank, DanglingVerticesLoseMassConsistently) {
  // Directed path 0->1->2: vertex 2 is a sink; parallel and serial agree
  // on the (mass-losing) convention.
  auto g = graph::from_edges(3, {{0, 1}, {1, 2}}, {});
  auto par = apps::pagerank(g);
  auto ser = baseline::pagerank(g);
  EXPECT_LT(l1_distance(par.rank, ser), 1e-12);
  double sum = std::accumulate(par.rank.begin(), par.rank.end(), 0.0);
  EXPECT_LT(sum, 1.0);
}

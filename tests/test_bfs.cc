// Tests for BFS (paper §4.1): parent-array validity, level agreement with
// the serial baseline across graph families and seeds, traversal-strategy
// equivalence, and the direction-switching trace (the premise of
// experiments F1/F2).
#include "apps/bfs.h"

#include <gtest/gtest.h>

#include "baseline/serial.h"
#include "graph/generators.h"

using namespace ligra;

namespace {

// A parent array is a valid BFS tree iff: parents[src] == src; every other
// reached vertex v has an edge (parents[v], v) and level exactly one more
// than its parent's; reachability matches the baseline.
void expect_valid_bfs_tree(const graph& g, vertex_id src,
                           const std::vector<vertex_id>& parents) {
  auto level = baseline::bfs_levels(g, src);
  ASSERT_EQ(parents.size(), g.num_vertices());
  EXPECT_EQ(parents[src], src);
  for (vertex_id v = 0; v < g.num_vertices(); v++) {
    if (level[v] == -1) {
      EXPECT_EQ(parents[v], kNoVertex) << "vertex " << v;
    } else {
      ASSERT_NE(parents[v], kNoVertex) << "vertex " << v;
      if (v != src) {
        EXPECT_TRUE(g.has_edge(parents[v], v))
            << parents[v] << "->" << v << " not an edge";
        EXPECT_EQ(level[v], level[parents[v]] + 1) << "vertex " << v;
      }
    }
  }
}

}  // namespace

class BfsGraphs : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BfsGraphs, RmatTreeValid) {
  uint64_t seed = GetParam();
  auto g = gen::rmat_graph(10, 1 << 13, seed);
  auto result = apps::bfs(g, 0);
  expect_valid_bfs_tree(g, 0, result.parents);
}

TEST_P(BfsGraphs, RandomGraphLevelsMatchBaseline) {
  uint64_t seed = GetParam();
  auto g = gen::random_graph(3000, 4, seed);
  auto src = static_cast<vertex_id>(seed % g.num_vertices());
  EXPECT_EQ(apps::bfs_levels(g, src), baseline::bfs_levels(g, src));
}

TEST_P(BfsGraphs, DirectedGraphLevelsMatchBaseline) {
  uint64_t seed = GetParam();
  auto g = gen::rmat_digraph(10, 1 << 12, seed);
  EXPECT_EQ(apps::bfs_levels(g, 0), baseline::bfs_levels(g, 0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsGraphs, ::testing::Values(1, 2, 3, 4, 5));

TEST(Bfs, PathGraphHasLinearLevels) {
  auto g = gen::path_graph(100);
  auto result = apps::bfs(g, 0);
  EXPECT_EQ(result.num_reached, 100u);
  EXPECT_EQ(result.num_rounds, 100u);  // 99 frontier rounds + final empty
  auto level = apps::bfs_levels(g, 0);
  for (vertex_id v = 0; v < 100; v++) EXPECT_EQ(level[v], v);
}

TEST(Bfs, DisconnectedComponentUnreached) {
  // Two disjoint paths: 0-1-2 and 3-4.
  auto g = graph::from_edges(5, {{0, 1}, {1, 2}, {3, 4}}, {.symmetrize = true});
  auto result = apps::bfs(g, 0);
  EXPECT_EQ(result.num_reached, 3u);
  EXPECT_EQ(result.parents[3], kNoVertex);
  EXPECT_EQ(result.parents[4], kNoVertex);
}

TEST(Bfs, SingleVertexGraph) {
  auto g = graph::from_edges(1, {}, {.symmetrize = true});
  auto result = apps::bfs(g, 0);
  EXPECT_EQ(result.num_reached, 1u);
  EXPECT_EQ(result.num_rounds, 1u);  // one edge_map on {0}, empty output
}

TEST(Bfs, OutOfRangeSourceThrows) {
  auto g = gen::path_graph(10);
  EXPECT_THROW(apps::bfs(g, 10), std::invalid_argument);
  EXPECT_THROW(apps::bfs_levels(g, 99), std::invalid_argument);
}

TEST(Bfs, AllStrategiesGiveSameLevels) {
  auto g = gen::rmat_graph(11, 1 << 14, 7);
  auto automatic = apps::bfs_levels(g, 0);
  for (traversal t : {traversal::sparse, traversal::dense,
                      traversal::dense_forward}) {
    // bfs_levels uses the default options; emulate forced strategies via
    // the bfs() trace API instead and compare reach + rounds.
    apps::bfs_options opts;
    opts.edge_map.strategy = t;
    auto result = apps::bfs(g, 0, opts);
    size_t reached_auto = 0;
    for (auto l : automatic)
      if (l >= 0) reached_auto++;
    EXPECT_EQ(result.num_reached, reached_auto) << traversal_name(t);
    expect_valid_bfs_tree(g, 0, result.parents);
  }
}

TEST(Bfs, HybridSwitchesDirectionOnRmat) {
  // On a low-diameter skewed graph the hybrid must use sparse for the tiny
  // first frontier and dense for the bulge — the paper's Figure 2 story.
  auto g = gen::rmat_graph(13, 16u << 13, 1);
  edge_map_stats stats;  // enables tracing
  apps::bfs_options opts;
  opts.edge_map.stats = &stats;
  auto result = apps::bfs(g, 0, opts);
  ASSERT_GE(result.trace.size(), 3u);
  EXPECT_EQ(result.trace.front().used, traversal::sparse);
  bool used_dense = false, sparse_after_dense = false, seen_dense = false;
  for (const auto& row : result.trace) {
    if (row.used == traversal::dense) {
      used_dense = true;
      seen_dense = true;
    }
    if (seen_dense && row.used == traversal::sparse) sparse_after_dense = true;
  }
  EXPECT_TRUE(used_dense);
  EXPECT_TRUE(sparse_after_dense);  // tail frontiers shrink again
}

TEST(Bfs, TraceFrontierSizesSumToReached) {
  auto g = gen::random_graph(4096, 8, 3);
  edge_map_stats stats;
  apps::bfs_options opts;
  opts.edge_map.stats = &stats;
  auto result = apps::bfs(g, 5, opts);
  size_t sum = 0;
  for (const auto& row : result.trace) sum += row.frontier_size;
  EXPECT_EQ(sum, result.num_reached);  // every frontier counted once
}

TEST(Bfs, NumRoundsIsSourceEccentricity) {
  auto g = gen::grid3d_graph(6);
  auto result = apps::bfs(g, 0);
  auto level = baseline::bfs_levels(g, 0);
  int64_t ecc = *std::max_element(level.begin(), level.end());
  EXPECT_EQ(result.num_rounds, static_cast<size_t>(ecc) + 1);
}

// Network query tier tests (docs/NETWORK.md): wire-protocol round trips,
// byte-level fuzzing (bit flips, truncations, hostile length prefixes —
// the WAL-fuzz discipline of test_durability.cc applied to frames), and
// end-to-end loopback serving: typed results, the full error taxonomy
// crossing the wire (deadline, shed + retry_after, rejected, not_found),
// per-connection in-flight caps, HTTP /metrics + /healthz, net.* failpoint
// injection, engine_net_* metrics, and graceful drain.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "obs/trace_store.h"
#include "util/crc32.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace e = ligra::engine;
namespace n = ligra::net;
namespace fp = ligra::util::failpoint;
using namespace ligra;
using namespace std::chrono_literals;

namespace {

graph small_graph() { return gen::rmat_graph(8, 1 << 11, /*seed=*/3); }

// Custom query that blocks until released; pairs with use_pool=false so it
// occupies a dispatcher, making queue states deterministic.
struct blocker {
  std::promise<void> release;
  std::shared_future<void> gate{release.get_future().share()};
  std::atomic<int> started{0};

  e::query_request request(const std::string& g) {
    e::query_request q;
    q.graph = g;
    q.kind = e::query_kind::custom;
    q.custom = [this](const e::graph_entry&, const e::cancel_token&) -> int64_t {
      started.fetch_add(1);
      gate.wait();
      return 7;
    };
    return q;
  }
};

n::wire_request bfs_request(uint64_t id, uint32_t src = 0, uint32_t dst = 5) {
  n::wire_request r;
  r.id = id;
  r.kind = e::query_kind::bfs_distance;
  r.graph = "g";
  r.source = src;
  r.target = dst;
  return r;
}

// Raw-socket helpers for the tests that need byte-level control (pipelined
// frames, garbage injection, HTTP) — the client library is deliberately too
// well-behaved for them.
int raw_connect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);
  timeval tv{10, 0};  // no test waits forever on a hung server
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

void raw_send(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t sent = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    ASSERT_GT(sent, 0);
    off += static_cast<size_t>(sent);
  }
}

// Reads until `count` response frames parse (or the peer closes / times
// out, which fails the test via the size assertion the caller makes).
std::vector<n::wire_response> raw_read_responses(int fd, size_t count) {
  std::vector<n::wire_response> out;
  std::string buf;
  char chunk[4096];
  while (out.size() < count) {
    size_t consumed = 0;
    auto f = n::try_parse_frame(buf.data(), buf.size(), &consumed);
    if (f) {
      out.push_back(n::decode_response(f->payload, f->payload_len));
      buf.erase(0, consumed);
      continue;
    }
    ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) break;
    buf.append(chunk, static_cast<size_t>(got));
  }
  return out;
}

// Reads until the peer closes (HTTP Connection: close responses).
std::string raw_read_all(int fd) {
  std::string out;
  char chunk[4096];
  for (;;) {
    ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) break;
    out.append(chunk, static_cast<size_t>(got));
  }
  return out;
}

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override { fp::disarm_all(); }
  void TearDown() override { fp::disarm_all(); }
};

}  // namespace

// --- protocol round trips ---------------------------------------------------

TEST_F(NetTest, RequestRoundTripsEveryField) {
  n::wire_request req;
  req.id = 0x1122334455667788ULL;
  req.kind = e::query_kind::sssp_distance;
  req.priority = e::query_priority::high;
  req.graph = "road-network";
  req.source = 42;
  req.target = 4242;
  req.k = 17;
  req.deadline_ms = 250;

  auto frame = n::encode_request_frame(req);
  size_t consumed = 0;
  auto f = n::try_parse_frame(frame.data(), frame.size(), &consumed);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(f->type, n::frame_type::request);

  auto back = n::decode_request(f->payload, f->payload_len);
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.kind, req.kind);
  EXPECT_EQ(back.priority, req.priority);
  EXPECT_EQ(back.graph, req.graph);
  EXPECT_EQ(back.source, req.source);
  EXPECT_EQ(back.target, req.target);
  EXPECT_EQ(back.k, req.k);
  EXPECT_EQ(back.deadline_ms, req.deadline_ms);
  EXPECT_TRUE(back.updates.empty());
}

TEST_F(NetTest, UpdateRequestCarriesTheBatch) {
  n::wire_request req;
  req.id = 9;
  req.kind = e::query_kind::update;
  req.graph = "m";
  req.updates.inserts = {edge{1, 2}, edge{3, 4}};
  req.updates.deletes = {edge{5, 6}};

  auto frame = n::encode_request_frame(req);
  size_t consumed = 0;
  auto f = n::try_parse_frame(frame.data(), frame.size(), &consumed);
  ASSERT_TRUE(f.has_value());
  auto back = n::decode_request(f->payload, f->payload_len);
  ASSERT_EQ(back.updates.inserts.size(), 2u);
  ASSERT_EQ(back.updates.deletes.size(), 1u);
  EXPECT_EQ(back.updates.inserts[0].u, 1u);
  EXPECT_EQ(back.updates.inserts[1].v, 4u);
  EXPECT_EQ(back.updates.deletes[0].u, 5u);
}

TEST_F(NetTest, ResponseRoundTripsResultsAndErrors) {
  n::wire_response ok;
  ok.id = 77;
  ok.status = n::wire_status::ok;
  ok.cache_hit = true;
  ok.value = -1;
  ok.micros = 123.5;
  ok.topk = {{3, 0.25}, {9, 0.125}};
  auto frame = n::encode_response_frame(ok);
  size_t consumed = 0;
  auto f = n::try_parse_frame(frame.data(), frame.size(), &consumed);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, n::frame_type::response);
  auto back = n::decode_response(f->payload, f->payload_len);
  EXPECT_EQ(back.id, 77u);
  EXPECT_TRUE(back.cache_hit);
  EXPECT_EQ(back.value, -1);
  EXPECT_DOUBLE_EQ(back.micros, 123.5);
  ASSERT_EQ(back.topk.size(), 2u);
  EXPECT_EQ(back.topk[0].first, 3u);
  EXPECT_DOUBLE_EQ(back.topk[1].second, 0.125);
  EXPECT_NO_THROW(n::throw_if_error(back));

  auto err = n::make_error_response(78, n::wire_status::shed, "busy", 40);
  auto eframe = n::encode_response_frame(err);
  auto ef = n::try_parse_frame(eframe.data(), eframe.size(), &consumed);
  ASSERT_TRUE(ef.has_value());
  auto eback = n::decode_response(ef->payload, ef->payload_len);
  EXPECT_EQ(eback.retry_after_ms, 40u);
  try {
    n::throw_if_error(eback);
    FAIL() << "shed status must throw";
  } catch (const e::shed_error& ex) {
    EXPECT_EQ(ex.retry_after, 40ms);
  }
  // Every other error status maps to its typed exception too.
  EXPECT_THROW(n::throw_if_error(n::make_error_response(
                   1, n::wire_status::deadline, "late")),
               e::deadline_exceeded_error);
  EXPECT_THROW(n::throw_if_error(n::make_error_response(
                   1, n::wire_status::cancelled, "c")),
               e::cancelled_error);
  EXPECT_THROW(n::throw_if_error(n::make_error_response(
                   1, n::wire_status::not_found, "nf")),
               e::not_found_error);
  EXPECT_THROW(n::throw_if_error(n::make_error_response(
                   1, n::wire_status::rejected, "r", 10)),
               e::rejected_error);
  EXPECT_THROW(n::throw_if_error(n::make_error_response(
                   1, n::wire_status::shutting_down, "bye", 500)),
               e::rejected_error);
  EXPECT_THROW(n::throw_if_error(n::make_error_response(
                   1, n::wire_status::protocol, "bad bytes")),
               n::protocol_error);
  EXPECT_THROW(n::throw_if_error(n::make_error_response(
                   1, n::wire_status::internal, "boom")),
               e::engine_error);
}

TEST_F(NetTest, PartialFrameAsksForMoreBytes) {
  auto frame = n::encode_request_frame(bfs_request(1));
  // Every strict prefix is "need more", never an error, never a frame.
  for (size_t len = 0; len < frame.size(); len++) {
    size_t consumed = 0;
    auto f = n::try_parse_frame(frame.data(), len, &consumed);
    EXPECT_FALSE(f.has_value()) << "prefix of " << len << " bytes";
  }
}

// --- fuzzing ----------------------------------------------------------------

// Single-bit flips anywhere in a frame must be *detected*: the CRC covers
// everything after the magic, and the magic bytes are checked literally, so
// no flip may yield a successfully parsed frame. (ASan in CI additionally
// proves no flip causes an over-read.)
TEST_F(NetTest, FuzzBitFlipsNeverParse) {
  n::wire_request req = bfs_request(3, 1, 2);
  req.graph = "fuzz-target";
  req.deadline_ms = 7;
  auto frame = n::encode_request_frame(req);
  for (size_t byte = 0; byte < frame.size(); byte++) {
    for (int bit = 0; bit < 8; bit++) {
      auto mut = frame;
      mut[byte] = static_cast<char>(mut[byte] ^ (1 << bit));
      size_t consumed = 0;
      bool parsed = false;
      try {
        auto f = n::try_parse_frame(mut.data(), mut.size(), &consumed);
        if (f.has_value()) {
          parsed = true;
          n::decode_request(f->payload, f->payload_len);
        }
      } catch (const n::protocol_error&) {
        continue;  // detected — the expected outcome
      }
      EXPECT_FALSE(parsed) << "bit " << bit << " of byte " << byte
                           << " flipped yet the frame parsed";
    }
  }
}

TEST_F(NetTest, FuzzTruncatedPayloadDecodesFail) {
  n::wire_request req;
  req.id = 4;
  req.kind = e::query_kind::update;
  req.graph = "gg";
  req.updates.inserts = {edge{1, 2}, edge{3, 4}};
  auto frame = n::encode_request_frame(req);
  size_t consumed = 0;
  auto f = n::try_parse_frame(frame.data(), frame.size(), &consumed);
  ASSERT_TRUE(f.has_value());
  // The payload layout is exact-length: any truncation is structurally
  // impossible and must throw, not read past the shortened buffer.
  for (uint32_t len = 0; len < f->payload_len; len++)
    EXPECT_THROW(n::decode_request(f->payload, len), n::protocol_error)
        << "payload truncated to " << len;

  auto resp = n::make_response(4, e::query_result{});
  resp.topk = {{1, 0.5}};
  resp.message = "msg";
  auto rframe = n::encode_response_frame(resp);
  auto rf = n::try_parse_frame(rframe.data(), rframe.size(), &consumed);
  ASSERT_TRUE(rf.has_value());
  for (uint32_t len = 0; len < rf->payload_len; len++)
    EXPECT_THROW(n::decode_response(rf->payload, len), n::protocol_error);
}

TEST_F(NetTest, FuzzHostileHeaders) {
  auto good = n::encode_request_frame(bfs_request(5));

  // Oversized length prefix: rejected before any buffering happens.
  auto oversized = good;
  uint32_t huge = n::kMaxPayloadBytes + 1;
  std::memcpy(oversized.data() + 8, &huge, 4);
  size_t consumed = 0;
  EXPECT_THROW(n::try_parse_frame(oversized.data(), oversized.size(), &consumed),
               n::protocol_error);

  // Unknown version.
  auto badver = good;
  badver[4] = 99;
  EXPECT_THROW(n::try_parse_frame(badver.data(), badver.size(), &consumed),
               n::protocol_error);

  // Unknown frame type.
  auto badtype = good;
  badtype[6] = 0x7f;
  EXPECT_THROW(n::try_parse_frame(badtype.data(), badtype.size(), &consumed),
               n::protocol_error);

  // Corrupted CRC field.
  auto badcrc = good;
  badcrc[12] = static_cast<char>(badcrc[12] ^ 0xff);
  EXPECT_THROW(n::try_parse_frame(badcrc.data(), badcrc.size(), &consumed),
               n::protocol_error);

  // Zero length prefix with a *correct* CRC: frame-valid, payload-invalid —
  // the decode layer must reject it, not read uninitialized memory.
  std::vector<char> zero(good.begin(), good.begin() + n::kFrameHeaderBytes);
  uint32_t zlen = 0;
  std::memcpy(zero.data() + 8, &zlen, 4);
  uint32_t zcrc = ligra::util::crc32(zero.data() + 4, 8);
  std::memcpy(zero.data() + 12, &zcrc, 4);
  auto zf = n::try_parse_frame(zero.data(), zero.size(), &consumed);
  ASSERT_TRUE(zf.has_value());
  EXPECT_EQ(zf->payload_len, 0u);
  EXPECT_THROW(n::decode_request(zf->payload, zf->payload_len),
               n::protocol_error);
}

TEST_F(NetTest, FuzzRandomGarbageNeverCrashes) {
  rng r(1234);
  for (int iter = 0; iter < 2000; iter++) {
    size_t len = r[2 * iter] % 256;
    std::vector<char> buf(len);
    for (size_t i = 0; i < len; i++)
      buf[i] = static_cast<char>(hash64(r[2 * iter + 1] ^ i));
    // Seed some buffers with real magic so parsing gets past the first gate.
    if (iter % 3 == 0 && len >= 4)
      std::memcpy(buf.data(), n::kFrameMagic, 4);
    size_t consumed = 0;
    try {
      auto f = n::try_parse_frame(buf.data(), buf.size(), &consumed);
      if (f.has_value()) {
        try {
          n::decode_request(f->payload, f->payload_len);
        } catch (const n::protocol_error&) {
        }
        try {
          n::decode_response(f->payload, f->payload_len);
        } catch (const n::protocol_error&) {
        }
      }
    } catch (const n::protocol_error&) {
    }
  }
}

// --- end-to-end loopback ----------------------------------------------------

TEST_F(NetTest, LoopbackQueriesReturnCorrectTypedResults) {
  e::registry reg;
  reg.add("g", small_graph());
  reg.add_mutable("m", small_graph());
  e::query_executor ex(reg);
  n::server srv(ex);
  srv.start();
  ASSERT_GT(srv.port(), 0);

  n::client c;
  c.connect("127.0.0.1", srv.port());

  // BFS over the wire matches BFS in-process.
  e::query_request local;
  local.graph = "g";
  local.kind = e::query_kind::bfs_distance;
  local.source = 0;
  local.target = 5;
  auto expect = ex.run(local);
  auto got = c.run(bfs_request(0, 0, 5));
  EXPECT_EQ(got.value, expect.value);

  // PageRank top-k arrives with ranks intact.
  n::wire_request pr;
  pr.kind = e::query_kind::pagerank_topk;
  pr.graph = "g";
  pr.k = 5;
  auto prr = c.run(pr);
  ASSERT_EQ(prr.topk.size(), 5u);
  EXPECT_GT(prr.topk[0].second, 0.0);
  EXPECT_GE(prr.topk[0].second, prr.topk[4].second);

  // Component id.
  n::wire_request cc;
  cc.kind = e::query_kind::component_id;
  cc.graph = "g";
  cc.source = 3;
  local = {};
  local.graph = "g";
  local.kind = e::query_kind::component_id;
  local.source = 3;
  EXPECT_EQ(c.run(cc).value, ex.run(local).value);

  // An update batch applies and returns the published version.
  n::wire_request up;
  up.kind = e::query_kind::update;
  up.graph = "m";
  up.updates.inserts = {edge{1, 200}, edge{200, 1}};
  auto upr = c.run(up);
  EXPECT_GE(upr.value, 1);

  // Unknown graph surfaces as not_found_error, same as in-process.
  n::wire_request nf = bfs_request(0);
  nf.graph = "no-such-graph";
  EXPECT_THROW(c.run(nf), e::not_found_error);

  // A 64-bit vertex id the engine cannot hold is a bad_request, caught
  // before it touches the executor.
  n::wire_request big = bfs_request(0);
  big.source = (uint64_t{1} << 40);
  EXPECT_THROW(c.run(big), e::engine_error);

  // The second identical BFS is a cache hit — visible over the wire.
  auto again = c.run(bfs_request(0, 0, 5));
  EXPECT_TRUE(again.cache_hit);

  // engine_net_* series landed in the shared registry.
  auto text = ex.metrics().render_text();
  EXPECT_NE(text.find("engine_net_connections_total"), std::string::npos);
  EXPECT_NE(text.find("engine_net_frames_total{dir=\"in\"}"), std::string::npos);
  EXPECT_NE(text.find("engine_net_request_micros_count"), std::string::npos);
  EXPECT_NE(text.find("engine_net_bytes_total"), std::string::npos);

  srv.stop();
  EXPECT_FALSE(srv.running());
}

TEST_F(NetTest, DeadlineErrorCrossesTheWire) {
  e::registry reg;
  reg.add("g", small_graph());
  // One dispatcher, occupied: the wire query sits queued past its 1 ms
  // budget and the watchdog settles it — deterministic on any machine.
  e::query_executor ex(reg, {.max_concurrency = 1,
                             .cache_capacity = 0,
                             .use_pool = false});
  n::server srv(ex);
  srv.start();

  blocker b;
  auto blocked = ex.submit(b.request("g"));
  while (b.started.load() == 0) std::this_thread::yield();

  n::client c;
  c.connect("127.0.0.1", srv.port());
  n::wire_request req = bfs_request(0);
  req.deadline_ms = 1;
  EXPECT_THROW(c.run(req), e::deadline_exceeded_error);

  b.release.set_value();
  EXPECT_EQ(blocked.get().value, 7);
  srv.stop();
}

TEST_F(NetTest, ShedRetryAfterCrossesTheWire) {
  e::registry reg;
  reg.add("g", small_graph());
  e::query_executor ex(reg, {.max_concurrency = 1,
                             .shed_watermark = 1,
                             .cache_capacity = 0,
                             .use_pool = false});
  n::server srv(ex);
  srv.start();

  // Occupy the dispatcher and put one normal-priority query in the queue so
  // the depth sits at the watermark.
  blocker b;
  auto blocked = ex.submit(b.request("g"));
  while (b.started.load() == 0) std::this_thread::yield();
  e::query_request filler;
  filler.graph = "g";
  filler.kind = e::query_kind::bfs_distance;
  filler.source = 1;
  filler.target = 2;
  auto queued = ex.submit(filler);

  n::client c;
  c.connect("127.0.0.1", srv.port());
  n::wire_request low = bfs_request(0, 3, 4);
  low.priority = e::query_priority::low;
  try {
    c.run(low);
    FAIL() << "low-priority query past the watermark must be shed";
  } catch (const e::shed_error& ex_err) {
    EXPECT_GT(ex_err.retry_after.count(), 0)
        << "shed advice must cross the wire populated";
  }

  b.release.set_value();
  blocked.get();
  queued.get();
  srv.stop();
}

TEST_F(NetTest, PerConnectionInflightCapRejectsWithAdvice) {
  e::registry reg;
  reg.add("g", small_graph());
  e::query_executor ex(reg, {.max_concurrency = 1,
                             .cache_capacity = 0,
                             .use_pool = false});
  n::server_options sopts;
  sopts.max_inflight_per_conn = 1;
  n::server srv(ex, sopts);
  srv.start();

  blocker b;
  auto blocked = ex.submit(b.request("g"));
  while (b.started.load() == 0) std::this_thread::yield();

  // Two pipelined requests: the first parks behind the blocker, the second
  // exceeds the cap and is rejected immediately — out of order, matched by
  // correlation id.
  int fd = raw_connect(srv.port());
  auto f1 = n::encode_request_frame(bfs_request(101, 0, 1));
  auto f2 = n::encode_request_frame(bfs_request(102, 2, 3));
  raw_send(fd, f1.data(), f1.size());
  raw_send(fd, f2.data(), f2.size());

  auto first = raw_read_responses(fd, 1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].id, 102u);
  EXPECT_EQ(first[0].status, n::wire_status::rejected);
  EXPECT_GT(first[0].retry_after_ms, 0u);

  b.release.set_value();
  blocked.get();
  auto second = raw_read_responses(fd, 1);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].id, 101u);
  EXPECT_EQ(second[0].status, n::wire_status::ok);

  ::close(fd);
  srv.stop();
}

TEST_F(NetTest, GarbageBytesGetProtocolErrorAndServerSurvives) {
  e::registry reg;
  reg.add("g", small_graph());
  e::query_executor ex(reg);
  n::server srv(ex);
  srv.start();

  int fd = raw_connect(srv.port());
  const char garbage[] = "GET / HTTP/1.0\r\n\r\n";  // not our magic
  raw_send(fd, garbage, sizeof(garbage) - 1);
  auto resp = raw_read_responses(fd, 1);
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(resp[0].status, n::wire_status::protocol);
  // The server closes a connection it cannot resync.
  char one;
  EXPECT_EQ(::recv(fd, &one, 1, 0), 0);
  ::close(fd);

  EXPECT_GE(ex.metrics().get_counter("engine_net_protocol_errors_total").value(),
            1u);

  // A fresh, well-formed connection still works: one bad citizen does not
  // take the server down.
  n::client c;
  c.connect("127.0.0.1", srv.port());
  EXPECT_NO_THROW(c.run(bfs_request(0, 0, 1)));
  srv.stop();
}

TEST_F(NetTest, HttpMetricsHealthzAndErrors) {
  e::registry reg;
  reg.add("g", small_graph());
  e::query_executor ex(reg);
  n::server_options sopts;
  sopts.http_port = 0;  // ephemeral
  n::server srv(ex, sopts);
  srv.start();
  ASSERT_GT(srv.http_port(), 0);

  // A query first, so /metrics has engine_net_ traffic to show.
  n::client c;
  c.connect("127.0.0.1", srv.port());
  c.run(bfs_request(0, 0, 1));

  auto get = [&](const std::string& req_line) {
    int fd = raw_connect(srv.http_port());
    std::string req = req_line + "\r\nHost: t\r\n\r\n";
    raw_send(fd, req.data(), req.size());
    std::string body = raw_read_all(fd);
    ::close(fd);
    return body;
  };

  auto metrics = get("GET /metrics HTTP/1.1");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("engine_net_frames_total"), std::string::npos);
  EXPECT_NE(metrics.find("engine_net_http_requests_total"), std::string::npos);

  auto health = get("GET /healthz HTTP/1.1");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  EXPECT_NE(get("GET /nope HTTP/1.1").find("404"), std::string::npos);
  EXPECT_NE(get("POST /metrics HTTP/1.1").find("405"), std::string::npos);
  srv.stop();
}

TEST_F(NetTest, NetFailpointsInjectConnectionFaults) {
  if (!fp::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  e::registry reg;
  reg.add("g", small_graph());
  e::query_executor ex(reg);
  n::server srv(ex);
  srv.start();

  // net.read: the next read on any connection fails; that connection dies,
  // the server does not.
  fp::spec s;
  s.act = fp::action::fail;
  s.count = 1;
  fp::arm("net.read", s);
  {
    n::client c;
    c.connect("127.0.0.1", srv.port());
    EXPECT_THROW(c.run(bfs_request(0)), std::exception);
  }
  EXPECT_GE(fp::hits("net.read"), 1u);

  // net.accept: the next accepted connection is dropped before it serves a
  // byte; the failure counter records it.
  fp::spec a;
  a.act = fp::action::fail;
  a.count = 1;
  fp::arm("net.accept", a);
  {
    n::client c;
    // TCP connect itself succeeds (the listener accepted then dropped), so
    // the failure surfaces on first use.
    try {
      c.connect("127.0.0.1", srv.port());
      c.run(bfs_request(0));
      // A retry may land after the one-shot failpoint expired; that's fine.
    } catch (const std::exception&) {
    }
  }
  EXPECT_GE(fp::hits("net.accept"), 1u);
  EXPECT_GE(
      ex.metrics().get_counter("engine_net_accept_failures_total").value(), 1u);

  // Disarmed, service is healthy again.
  fp::disarm_all();
  n::client c;
  c.connect("127.0.0.1", srv.port());
  EXPECT_NO_THROW(c.run(bfs_request(0, 0, 2)));
  srv.stop();
}

TEST_F(NetTest, GracefulStopDrainsAndRefusesNewWork) {
  e::registry reg;
  reg.add("g", small_graph());
  e::query_executor ex(reg);
  n::server_options sopts;
  sopts.drain_deadline = 2000ms;
  n::server srv(ex, sopts);
  srv.start();
  const uint16_t port = srv.port();

  n::client c;
  c.connect("127.0.0.1", port);
  EXPECT_NO_THROW(c.run(bfs_request(0, 0, 1)));

  srv.stop();
  EXPECT_FALSE(srv.running());
  EXPECT_EQ(srv.connections(), 0u);

  // The listener is gone: connects fail once the retries run out.
  n::client late({.connect_attempts = 2});
  EXPECT_THROW(late.connect("127.0.0.1", port), std::runtime_error);

  // stop() is idempotent, and a stopped server can start again.
  srv.stop();
  srv.start();
  n::client again;
  again.connect("127.0.0.1", srv.port());
  EXPECT_NO_THROW(again.run(bfs_request(0, 0, 3)));
  srv.stop();
}

// --- query tracing over the wire (docs/OBSERVABILITY.md) --------------------

TEST_F(NetTest, TraceBlockRoundTripsOnRequestAndResponse) {
  n::wire_request req = bfs_request(11, 2, 3);
  req.tid = {0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  req.sampled = true;

  auto frame = n::encode_request_frame(req);
  size_t consumed = 0;
  auto f = n::try_parse_frame(frame.data(), frame.size(), &consumed);
  ASSERT_TRUE(f.has_value());
  // A traced frame announces v2 and the trace flag.
  EXPECT_EQ(f->version, n::kProtocolVersion);
  EXPECT_NE(f->flags & n::kFlagTrace, 0);
  auto back = n::decode_request(f->payload, f->payload_len, f->flags);
  EXPECT_EQ(back.tid, req.tid);
  EXPECT_TRUE(back.sampled);
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.graph, req.graph);

  n::wire_response resp = n::make_response(11, e::query_result{});
  resp.tid = req.tid;
  auto rframe = n::encode_response_frame(resp);
  auto rf = n::try_parse_frame(rframe.data(), rframe.size(), &consumed);
  ASSERT_TRUE(rf.has_value());
  EXPECT_EQ(rf->version, n::kProtocolVersion);
  auto rback = n::decode_response(rf->payload, rf->payload_len, rf->flags);
  EXPECT_EQ(rback.tid, req.tid);
}

TEST_F(NetTest, UntracedFramesStayProtocolV1) {
  // No trace id -> the encoder emits version 1 with zero flags,
  // byte-identical to the pre-trace wire format, so v1 peers interoperate.
  auto frame = n::encode_request_frame(bfs_request(1));
  ASSERT_GE(frame.size(), size_t{n::kFrameHeaderBytes});
  EXPECT_EQ(static_cast<uint8_t>(frame[4]), 1);  // version lo byte
  EXPECT_EQ(static_cast<uint8_t>(frame[5]), 0);  // version hi byte
  EXPECT_EQ(static_cast<uint8_t>(frame[7]), 0);  // flags

  size_t consumed = 0;
  auto f = n::try_parse_frame(frame.data(), frame.size(), &consumed);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->version, 1);
  EXPECT_EQ(f->flags, 0);
  auto back = n::decode_request(f->payload, f->payload_len, f->flags);
  EXPECT_FALSE(back.tid.valid());
  EXPECT_FALSE(back.sampled);
}

namespace {

// Patches a frame in place after a payload mutation: recomputes the CRC the
// same way seal_frame does (bytes [4, 12) then the payload).
void refresh_crc(std::vector<char>& frame) {
  const size_t payload_len = frame.size() - n::kFrameHeaderBytes;
  uint32_t c = ligra::util::crc32(frame.data() + 4, 8);
  c = ligra::util::crc32(frame.data() + n::kFrameHeaderBytes, payload_len, c);
  std::memcpy(frame.data() + 12, &c, 4);
}

}  // namespace

TEST_F(NetTest, HostileTraceBlocksAreRejected) {
  n::wire_request req = bfs_request(12, 0, 1);
  req.tid = {7, 9};
  req.sampled = true;
  auto traced = n::encode_request_frame(req);
  size_t consumed = 0;

  // Sampled byte outside {0, 1}: structurally corrupt.
  {
    auto mut = traced;
    mut.back() = 2;  // the sampled byte is the last payload byte
    refresh_crc(mut);
    auto f = n::try_parse_frame(mut.data(), mut.size(), &consumed);
    ASSERT_TRUE(f.has_value());
    EXPECT_THROW(n::decode_request(f->payload, f->payload_len, f->flags),
                 n::protocol_error);
  }

  // Trace flag set but the id bytes are all zero: flag and block disagree.
  {
    auto mut = traced;
    std::memset(mut.data() + mut.size() - 17, 0, 16);
    refresh_crc(mut);
    auto f = n::try_parse_frame(mut.data(), mut.size(), &consumed);
    ASSERT_TRUE(f.has_value());
    EXPECT_THROW(n::decode_request(f->payload, f->payload_len, f->flags),
                 n::protocol_error);
  }

  // Trace flag set with no block bytes at all: length mismatch.
  {
    auto mut = n::encode_request_frame(bfs_request(13));
    mut[4] = 2;                                      // version 2
    mut[7] = static_cast<char>(n::kFlagTrace);       // flag without the bytes
    refresh_crc(mut);
    auto f = n::try_parse_frame(mut.data(), mut.size(), &consumed);
    ASSERT_TRUE(f.has_value());
    EXPECT_THROW(n::decode_request(f->payload, f->payload_len, f->flags),
                 n::protocol_error);
  }

  // Truncated trace block (one id byte missing): length mismatch, no
  // over-read.
  {
    auto mut = traced;
    mut.pop_back();
    uint32_t plen = static_cast<uint32_t>(mut.size() - n::kFrameHeaderBytes);
    std::memcpy(mut.data() + 8, &plen, 4);
    refresh_crc(mut);
    auto f = n::try_parse_frame(mut.data(), mut.size(), &consumed);
    ASSERT_TRUE(f.has_value());
    EXPECT_THROW(n::decode_request(f->payload, f->payload_len, f->flags),
                 n::protocol_error);
  }

  // Response-side: traced response with the block sliced off.
  {
    n::wire_response resp = n::make_response(12, e::query_result{});
    resp.tid = {7, 9};
    auto rmut = n::encode_response_frame(resp);
    rmut.resize(rmut.size() - 16);
    uint32_t plen = static_cast<uint32_t>(rmut.size() - n::kFrameHeaderBytes);
    std::memcpy(rmut.data() + 8, &plen, 4);
    refresh_crc(rmut);
    auto f = n::try_parse_frame(rmut.data(), rmut.size(), &consumed);
    ASSERT_TRUE(f.has_value());
    EXPECT_THROW(n::decode_response(f->payload, f->payload_len, f->flags),
                 n::protocol_error);
  }
}

// The bit-flip guarantee holds for v2 traced frames exactly as for v1.
TEST_F(NetTest, FuzzBitFlipsTracedFramesNeverParse) {
  n::wire_request req = bfs_request(3, 1, 2);
  req.graph = "fuzz-target";
  req.tid = obs::trace_id::mint();
  req.sampled = true;
  auto frame = n::encode_request_frame(req);
  for (size_t byte = 0; byte < frame.size(); byte++) {
    for (int bit = 0; bit < 8; bit++) {
      auto mut = frame;
      mut[byte] = static_cast<char>(mut[byte] ^ (1 << bit));
      size_t consumed = 0;
      bool parsed = false;
      try {
        auto f = n::try_parse_frame(mut.data(), mut.size(), &consumed);
        if (f.has_value()) {
          parsed = true;
          n::decode_request(f->payload, f->payload_len, f->flags);
        }
      } catch (const n::protocol_error&) {
        continue;  // detected — the expected outcome
      }
      EXPECT_FALSE(parsed) << "bit " << bit << " of byte " << byte
                           << " flipped yet the traced frame parsed";
    }
  }
}

namespace {

// One HTTP GET against the server's side port; returns status line + body.
std::string http_get(uint16_t port, const std::string& path) {
  int fd = raw_connect(port);
  std::string req = "GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n";
  raw_send(fd, req.data(), req.size());
  std::string body = raw_read_all(fd);
  ::close(fd);
  return body;
}

// Retention happens when the query body exits (the executor observes on
// the execution path, never from the watchdog), so a just-settled error
// response can precede its trace record by a beat — poll briefly.
std::string http_get_eventually(uint16_t port, const std::string& path) {
  for (int i = 0; i < 100; i++) {
    auto body = http_get(port, path);
    if (body.find("200 OK") != std::string::npos) return body;
    std::this_thread::sleep_for(20ms);
  }
  return http_get(port, path);
}

}  // namespace

TEST_F(NetTest, TraceIdRoundTripsEndToEndAndIsRetrievable) {
  obs::trace_store traces(64);
  obs::flight_recorder flightrec(64);
  e::registry reg;
  reg.add("g", small_graph());
  e::executor_options eopts;
  eopts.traces = &traces;
  eopts.flightrec = &flightrec;
  eopts.slow_trace_micros = 1;  // everything is "slow": armed + retained
  e::query_executor ex(reg, eopts);
  n::server_options sopts;
  sopts.http_port = 0;
  n::server srv(ex, sopts);
  srv.start();
  ASSERT_GT(srv.http_port(), 0);

  n::client_options copts;
  copts.trace_sample = 1.0;  // every request minted + sampled client-side
  n::client c(copts);
  c.connect("127.0.0.1", srv.port());
  auto r = c.run(bfs_request(0, 1, 6));
  // The response carries the id back; the client records it.
  ASSERT_TRUE(r.tid.valid());
  EXPECT_EQ(c.last_trace_id(), r.tid);
  const std::string hex = r.tid.to_hex();

  // GET /traces/<id>: the retained record, with the full armed trace —
  // per-round edge_map records and phase spans.
  auto body = http_get_eventually(srv.http_port(), "/traces/" + hex);
  EXPECT_NE(body.find("200 OK"), std::string::npos);
  EXPECT_NE(body.find(hex), std::string::npos);
  EXPECT_NE(body.find("\"rounds\""), std::string::npos);
  EXPECT_NE(body.find("\"spans\""), std::string::npos);
  EXPECT_NE(body.find("\"outcome\":\"ok\""), std::string::npos);

  // GET /traces: the index lists it (summaries, newest first).
  auto index = http_get(srv.http_port(), "/traces");
  EXPECT_NE(index.find("200 OK"), std::string::npos);
  EXPECT_NE(index.find(hex), std::string::npos);
  EXPECT_NE(index.find("\"retained\""), std::string::npos);

  // GET /debug/flightrec: the summary ring saw the query too.
  auto flight = http_get(srv.http_port(), "/debug/flightrec");
  EXPECT_NE(flight.find("200 OK"), std::string::npos);
  EXPECT_NE(flight.find(hex), std::string::npos);
  EXPECT_NE(flight.find("\"entries\""), std::string::npos);

  // Unknown and malformed ids get JSON errors, not crashes.
  EXPECT_NE(http_get(srv.http_port(),
                     "/traces/00000000000000000000000000000001")
                .find("404"),
            std::string::npos);
  EXPECT_NE(http_get(srv.http_port(), "/traces/zzz").find("400"),
            std::string::npos);
  srv.stop();
}

TEST_F(NetTest, DeadlineExceededQueryIsRetrievablePostMortem) {
  obs::trace_store traces(64);
  obs::flight_recorder flightrec(64);
  e::registry reg;
  reg.add("g", small_graph());
  e::executor_options eopts;
  eopts.max_concurrency = 1;
  eopts.cache_capacity = 0;
  eopts.use_pool = false;
  eopts.traces = &traces;
  eopts.flightrec = &flightrec;
  e::query_executor ex(reg, eopts);
  n::server_options sopts;
  sopts.http_port = 0;
  n::server srv(ex, sopts);
  srv.start();

  // Occupy the one dispatcher so the wire query blows its 1 ms budget.
  blocker b;
  auto blocked = ex.submit(b.request("g"));
  while (b.started.load() == 0) std::this_thread::yield();

  n::client_options copts;
  copts.trace_sample = 1.0;
  n::client c(copts);
  c.connect("127.0.0.1", srv.port());
  n::wire_request req = bfs_request(0);
  req.deadline_ms = 1;
  EXPECT_THROW(c.run(req), e::deadline_exceeded_error);
  // The error response still carried the id — the post-mortem handle.
  const obs::trace_id tid = c.last_trace_id();
  ASSERT_TRUE(tid.valid());

  b.release.set_value();
  EXPECT_EQ(blocked.get().value, 7);

  // The retained record is reachable by that id and says what happened.
  auto body =
      http_get_eventually(srv.http_port(), "/traces/" + tid.to_hex());
  EXPECT_NE(body.find("200 OK"), std::string::npos);
  EXPECT_NE(body.find(tid.to_hex()), std::string::npos);
  EXPECT_NE(body.find("\"outcome\":\"deadline\""), std::string::npos);
  srv.stop();
}

TEST_F(NetTest, ShedRefusalCarriesTraceIdAndRetryAdvice) {
  obs::trace_store traces(64);
  obs::flight_recorder flightrec(64);
  e::registry reg;
  reg.add("g", small_graph());
  e::executor_options eopts;
  eopts.max_concurrency = 1;
  eopts.shed_watermark = 1;
  eopts.cache_capacity = 0;
  eopts.use_pool = false;
  eopts.traces = &traces;
  eopts.flightrec = &flightrec;
  e::query_executor ex(reg, eopts);
  n::server_options sopts;
  sopts.http_port = 0;
  n::server srv(ex, sopts);
  srv.start();

  blocker b;
  auto blocked = ex.submit(b.request("g"));
  while (b.started.load() == 0) std::this_thread::yield();
  e::query_request filler;
  filler.graph = "g";
  filler.kind = e::query_kind::component_id;
  filler.source = 1;
  auto queued = ex.submit(filler);

  n::client_options copts;
  copts.trace_sample = 1.0;
  n::client c(copts);
  c.connect("127.0.0.1", srv.port());
  n::wire_request req = bfs_request(0);
  req.priority = e::query_priority::low;
  obs::trace_id tid{};
  try {
    c.run(req);
    FAIL() << "low-priority request at the watermark must shed";
  } catch (const e::shed_error& ex_shed) {
    EXPECT_GT(ex_shed.retry_after.count(), 0);
    tid = c.last_trace_id();
  }
  ASSERT_TRUE(tid.valid());

  b.release.set_value();
  blocked.get();
  queued.get();

  // The slow-query log kept the refusal, with the advice the caller got.
  auto body =
      http_get_eventually(srv.http_port(), "/traces/" + tid.to_hex());
  EXPECT_NE(body.find("200 OK"), std::string::npos);
  EXPECT_NE(body.find("\"outcome\":\"shed\""), std::string::npos);
  EXPECT_NE(body.find("\"retry_after_ms\""), std::string::npos);
  srv.stop();
}

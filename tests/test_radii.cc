// Tests for graph radii estimation (paper §4.3): the multi-BFS estimate is
// a lower bound on true eccentricity, is exact when every vertex is a
// sample source, and the diameter estimate is sane on known topologies.
#include "apps/radii.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/serial.h"
#include "graph/generators.h"

using namespace ligra;

TEST(Radii, ExactWhenAllVerticesAreSources) {
  // n <= 64 and num_samples = n: every vertex runs a BFS, so radii[v] is
  // the exact eccentricity (within the connected graph).
  auto g = gen::cycle_graph(16);
  auto result = apps::radii_estimate(g, 1, 64);
  auto exact = baseline::exact_eccentricity(g);
  for (vertex_id v = 0; v < 16; v++)
    EXPECT_EQ(result.radii[v], exact[v]) << "vertex " << v;
  EXPECT_EQ(result.diameter_estimate, 8);
}

TEST(Radii, PathGraphExactFromAllSources) {
  auto g = gen::path_graph(20);
  auto result = apps::radii_estimate(g, 3, 64);
  auto exact = baseline::exact_eccentricity(g);
  for (vertex_id v = 0; v < 20; v++) EXPECT_EQ(result.radii[v], exact[v]);
  EXPECT_EQ(result.diameter_estimate, 19);
}

class RadiiSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RadiiSeeds, EstimateIsLowerBoundOnEccentricity) {
  uint64_t seed = GetParam();
  auto g = gen::random_graph(500, 4, seed);
  auto result = apps::radii_estimate(g, seed, 32);
  auto exact = baseline::exact_eccentricity(g);
  for (vertex_id v = 0; v < g.num_vertices(); v++) {
    if (result.radii[v] >= 0) {
      EXPECT_LE(result.radii[v], exact[v]) << "vertex " << v;
    }
  }
}

TEST_P(RadiiSeeds, MoreSamplesNeverLowerTheEstimate) {
  uint64_t seed = GetParam();
  auto g = gen::rmat_graph(9, 1 << 11, seed);
  auto few = apps::radii_estimate(g, 7, 4);
  auto many = apps::radii_estimate(g, 7, 64);
  // Same seed: the first 4 sources are a subset of the 64, so per-vertex
  // estimates can only grow.
  for (vertex_id v = 0; v < g.num_vertices(); v++)
    EXPECT_GE(many.radii[v], few.radii[v]) << "vertex " << v;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RadiiSeeds, ::testing::Values(1, 2, 3, 4));

TEST(Radii, DiameterEstimateTightOnGrid) {
  // 3-D torus of side 8: diameter = 3 * 4 = 12. With 64 random sources on
  // 512 vertices the estimate lands within a small additive gap.
  auto g = gen::grid3d_graph(8);
  auto result = apps::radii_estimate(g, 5, 64);
  EXPECT_LE(result.diameter_estimate, 12);
  EXPECT_GE(result.diameter_estimate, 10);
}

TEST(Radii, UnreachedVerticesStayMinusOne) {
  // Two components; sample only from one (seed chosen so all 2 samples land
  // in the larger component is not guaranteed — use explicit construction:
  // single sample on a 2-component graph).
  auto g = graph::from_edges(10, {{0, 1}, {1, 2}, {5, 6}}, {.symmetrize = true});
  // num_samples=1: source is deterministic from the seed; find a seed whose
  // source lies in {0,1,2} and check 5,6 stay -1.
  for (uint64_t seed = 0; seed < 50; seed++) {
    auto result = apps::radii_estimate(g, seed, 1);
    bool sampled_small = result.radii[5] >= 0 || result.radii[6] >= 0;
    if (!sampled_small) {
      EXPECT_EQ(result.radii[5], -1);
      EXPECT_EQ(result.radii[6], -1);
      return;
    }
  }
  FAIL() << "no seed sampled the large component";
}

TEST(Radii, EmptyGraph) {
  graph g;
  auto result = apps::radii_estimate(g);
  EXPECT_EQ(result.diameter_estimate, 0);
  EXPECT_TRUE(result.radii.empty());
}

TEST(Radii, SampleCountClamped) {
  auto g = gen::cycle_graph(8);
  auto result = apps::radii_estimate(g, 1, 1000);  // clamped to min(64, n)
  EXPECT_EQ(result.diameter_estimate, 4);
}

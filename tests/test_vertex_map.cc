// Tests for vertex_map / vertex_filter (paper §3).
#include "ligra/vertex_map.h"

#include <gtest/gtest.h>

#include <atomic>

#include "graph/generators.h"

using namespace ligra;

TEST(VertexMap, AppliesToEveryMemberExactlyOnce) {
  const vertex_id n = 10000;
  std::vector<vertex_id> ids;
  for (vertex_id v = 0; v < n; v += 3) ids.push_back(v);
  vertex_subset vs(n, ids);
  std::vector<std::atomic<int>> hits(n);
  vertex_map(vs, [&](vertex_id v) { hits[v].fetch_add(1); });
  for (vertex_id v = 0; v < n; v++)
    ASSERT_EQ(hits[v].load(), v % 3 == 0 ? 1 : 0);
}

TEST(VertexMap, WorksOnDenseRepresentation) {
  auto vs = vertex_subset::all(1000);
  std::atomic<uint64_t> sum{0};
  vertex_map(vs, [&](vertex_id v) {
    sum.fetch_add(v, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), uint64_t{1000} * 999 / 2);
}

TEST(VertexMap, EmptySubsetNoCalls) {
  vertex_subset vs(100);
  bool called = false;
  vertex_map(vs, [&](vertex_id) { called = true; });
  EXPECT_FALSE(called);
}

TEST(VertexFilter, SparseKeepsMatching) {
  vertex_subset vs(100, std::vector<vertex_id>{1, 2, 3, 4, 5, 6});
  auto evens = vertex_filter(vs, [](vertex_id v) { return v % 2 == 0; });
  EXPECT_EQ(evens.to_sorted_vector(), (std::vector<vertex_id>{2, 4, 6}));
  EXPECT_FALSE(evens.is_dense());  // representation preserved
}

TEST(VertexFilter, DenseKeepsMatching) {
  auto vs = vertex_subset::all(10);
  auto odds = vertex_filter(vs, [](vertex_id v) { return v % 2 == 1; });
  EXPECT_TRUE(odds.is_dense());
  EXPECT_EQ(odds.size(), 5u);
  EXPECT_TRUE(odds.contains(3));
  EXPECT_FALSE(odds.contains(4));
}

TEST(VertexFilter, FilterOfFilterComposes) {
  auto vs = vertex_subset::all(100);
  auto div3 = vertex_filter(vs, [](vertex_id v) { return v % 3 == 0; });
  auto div15 = vertex_filter(div3, [](vertex_id v) { return v % 5 == 0; });
  EXPECT_EQ(div15.size(), 7u);  // 0,15,...,90
}

TEST(VertexFilter, NoneAndAll) {
  vertex_subset vs(50, std::vector<vertex_id>{10, 20});
  EXPECT_TRUE(vertex_filter(vs, [](vertex_id) { return false; }).empty());
  EXPECT_EQ(vertex_filter(vs, [](vertex_id) { return true; }).size(), 2u);
}

// Query server driver for the concurrent engine (docs/ENGINE.md): holds
// graphs resident in a registry and replays query workloads through the
// admission-controlled executor, reporting p50/p99 latency, throughput,
// cache hit rate, and rejection counts.
//
// Modes:
//   ./examples/query_server                       # built-in demo workload
//   ./examples/query_server -n 5000 -conc 8       # bigger synthetic replay
//   ./examples/query_server -requests reqs.txt -load social=g.adj,sym
//   ./examples/query_server -repl -load road=g.bin,weighted
//
// Network modes (docs/NETWORK.md) — the same binary is driver and daemon:
//   ./examples/query_server -listen 7471 -http-port 7472
//       serve the wire protocol on 7471 and GET /metrics + /healthz on
//       7472 until SIGINT/SIGTERM; shutdown stops admissions, drains
//       in-flight queries (bounded by -drain-ms, default 5000), and
//       checkpoints durable mutable graphs before exiting
//   ./examples/query_server -connect 127.0.0.1:7471 -conns 4 -n 1000
//       drive a running daemon over N concurrent client connections with
//       the synthetic mix (-graph picks the target graph, default social);
//       prints queries/sec and latency percentiles
//
// Robustness knobs (docs/ROBUSTNESS.md):
//   -deadline-ms N      per-query deadline on every replayed request
//   -cancel-rate F      cancel this fraction of requests right after submit
//   -low-rate F         mark this fraction low-priority (sheddable)
//   -shed-watermark N   shed low-priority submissions past this queue depth
//   -failpoints SPEC    arm failpoints, e.g. "cache.insert=fail,p=0.1"
//
// Batched execution knobs (docs/ENGINE.md "Batched execution"):
//   -batch-max N        members per coalesced multi-BFS fan-out (<= 64;
//                       1 disables batching; default 64)
//   -batch-window-us N  hold a forming batch open N microseconds waiting
//                       for companions (default 0: only coalesce what is
//                       already queued)
//
// Durability knobs (docs/DURABILITY.md):
//   -wal-dir DIR        give every mutable graph a durable store under
//                       DIR/<name>: updates append to a write-ahead log
//                       before publishing, and an existing store is
//                       recovered (checkpoint + WAL replay) instead of
//                       starting fresh
//   -fsync POLICY       WAL fsync policy: always | interval | never
//   -checkpoint-interval N   checkpoint every N applied batches
//
// Observability knobs (docs/OBSERVABILITY.md):
//   -stats-interval S   every S seconds, print per-kind p50/p95/p99 latency
//                       and queue/running depth from the shared registry
//   -metrics-dump FMT   dump the full metrics registry at exit
//                       (FMT = text | json; default text)
//   -log-level L        structured-log threshold: debug|info|warn|error|off
//                       (default info)
//   -log-json           emit log lines as JSON objects instead of text
//   -trace-sample F     sample this fraction of queries server-side: full
//                       trace armed and retained in the trace store
//   -slow-trace-ms N    always retain queries slower than N ms (arms a
//                       trace on every query so slow ones have rounds)
//   In daemon mode the side port also serves GET /traces, /traces/<id>,
//   and /debug/flightrec; SIGUSR1 dumps the flight recorder to stderr.
//
// Request-file / REPL line format (one request per line, '#' comments):
//   <graph> bfs <source> <target>
//   <graph> sssp <source> <target>
//   <graph> pagerank <k>
//   <graph> cc <vertex>
//   <graph> kcore <vertex>
//   <graph> triangles
//   <graph> update <file>            # apply an edge-update batch (file
//   <graph> update +u,v -u,v ...     #   or inline); mutable graphs only
//     batch file lines: "u v" / "+ u v" (insert), "- u v" (delete)
// REPL extras: graphs | stats | metrics | trace <request> | clear-cache |
//              checkpoint <graph> | wal-stats <graph> | help | quit
//
// Load specs accept a `mutable` option (-load feed=g.adj,sym,mutable) to
// register the graph through add_mutable so `update` requests work on it;
// the demo set includes a mutable "feed" graph (docs/DYNAMIC.md).
//
// Every replay runs twice — cold (empty cache) and warm (same requests
// again) — so the cache's effect on p50 is visible directly.
#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dynamic/checkpoint.h"
#include "engine/engine.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/collectors.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_store.h"
#include "util/cli.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace ligra;

namespace {

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

// -wal-dir / -fsync / -checkpoint-interval: when wal_dir is non-empty,
// every mutable graph gets a durable store under wal_dir/<name> —
// recovered if state already exists there, created fresh otherwise.
struct durability_config {
  std::string wal_dir;  // empty = durability off
  dynamic::durability_options dur;
};

// Registers `name` as a mutable graph, durably when configured. `make`
// supplies the base graph only when no durable state exists — on recovery
// the checkpoint + WAL replay reconstruct it instead.
engine::graph_handle add_mutable_graph(engine::registry& reg,
                                       const std::string& name,
                                       const durability_config& dcfg,
                                       const std::function<graph()>& make) {
  if (dcfg.wal_dir.empty()) return reg.add_mutable(name, make());
  const std::string dir = dcfg.wal_dir + "/" + name;
  if (dynamic::durable_store::has_state(dir)) {
    dynamic::recovery_report rep;
    auto h = reg.recover_mutable(name, dir, dcfg.dur, {}, &rep);
    std::printf("recovered '%s' from %s: version %llu (checkpoint seq %llu, "
                "%llu wal records replayed)\n",
                name.c_str(), dir.c_str(),
                static_cast<unsigned long long>(h->dyn()->version()),
                static_cast<unsigned long long>(rep.checkpoint_seq),
                static_cast<unsigned long long>(rep.replayed));
    for (const auto& note : rep.notes)
      std::printf("  recovery note: %s\n", note.c_str());
    return h;
  }
  return reg.add_mutable(name, make(), dir, dcfg.dur);
}

// Parses "name=path[,weighted][,sym][,compress][,mutable]" and loads it.
void load_spec(engine::registry& reg, const std::string& spec,
               const durability_config& dcfg) {
  auto eq = spec.find('=');
  if (eq == std::string::npos)
    throw std::runtime_error("bad -load spec (want name=path[,opts]): " + spec);
  std::string name = spec.substr(0, eq);
  std::string rest = spec.substr(eq + 1);
  engine::load_options opts;
  bool want_mutable = false;
  std::string path;
  std::stringstream ss(rest);
  std::string part;
  bool first = true;
  while (std::getline(ss, part, ',')) {
    if (first) {
      path = part;
      first = false;
    } else if (part == "weighted") {
      opts.weighted = true;
    } else if (part == "sym" || part == "symmetric") {
      opts.symmetric = true;
    } else if (part == "compress") {
      opts.compress = true;
    } else if (part == "mutable") {
      want_mutable = true;
    } else {
      throw std::runtime_error("unknown -load option: " + part);
    }
  }
  if (want_mutable && opts.weighted)
    throw std::runtime_error(
        "mutable graphs are unweighted (drop 'weighted' from: " + spec + ")");
  auto h = reg.load(name, path, opts);
  if (want_mutable) {
    // Re-register through add_mutable so `update` requests work on it
    // (replaces the just-loaded static entry under the same name). With
    // -wal-dir, existing durable state wins over the file's contents.
    graph base(h->structure());
    h = add_mutable_graph(reg, name, dcfg,
                          [&]() { return std::move(base); });
  }
  std::printf("loaded '%s' from %s: %u vertices, %llu edges%s%s%s\n",
              name.c_str(), path.c_str(), h->num_vertices(),
              static_cast<unsigned long long>(h->num_edges()),
              h->weighted() ? ", weighted" : "",
              h->compressed() ? ", compressed replica" : "",
              h->is_mutable() ? ", mutable" : "");
}

// One batch file line: "u v" or "+ u v" inserts, "- u v" deletes,
// '#' comments and blank lines skipped.
void read_batch_file(const std::string& path, dynamic::update_batch& batch) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open batch file: " + path);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    lineno++;
    std::stringstream ls(line);
    std::string first;
    if (!(ls >> first) || first[0] == '#') continue;
    bool is_delete = false;
    uint64_t u = 0, v = 0;
    if (first == "+" || first == "-") {
      is_delete = first == "-";
      if (!(ls >> u >> v))
        throw std::runtime_error("bad batch line " + std::to_string(lineno) +
                                 " in " + path + ": " + line);
    } else {
      u = std::stoull(first);
      if (!(ls >> v))
        throw std::runtime_error("bad batch line " + std::to_string(lineno) +
                                 " in " + path + ": " + line);
    }
    edge e{static_cast<vertex_id>(u), static_cast<vertex_id>(v)};
    (is_delete ? batch.deletes : batch.inserts).push_back(e);
  }
}

// Parses one request line; returns false on blank/comment lines.
bool parse_request(const std::string& line, engine::query_request& out) {
  std::stringstream ss(line);
  std::string graph_name, kind;
  if (!(ss >> graph_name)) return false;
  if (graph_name[0] == '#') return false;
  if (!(ss >> kind)) throw std::runtime_error("missing query kind: " + line);
  out = {};
  out.graph = graph_name;
  uint64_t a = 0, b = 0;
  if (kind == "bfs" || kind == "sssp") {
    if (!(ss >> a >> b))
      throw std::runtime_error("want '<graph> " + kind + " <src> <dst>': " + line);
    out.kind = kind == "bfs" ? engine::query_kind::bfs_distance
                             : engine::query_kind::sssp_distance;
    out.source = static_cast<vertex_id>(a);
    out.target = static_cast<vertex_id>(b);
  } else if (kind == "pagerank") {
    if (!(ss >> a)) a = 10;
    out.kind = engine::query_kind::pagerank_topk;
    out.k = static_cast<uint32_t>(a);
  } else if (kind == "cc" || kind == "kcore") {
    if (!(ss >> a))
      throw std::runtime_error("want '<graph> " + kind + " <vertex>': " + line);
    out.kind = kind == "cc" ? engine::query_kind::component_id
                            : engine::query_kind::coreness;
    out.source = static_cast<vertex_id>(a);
  } else if (kind == "triangles") {
    out.kind = engine::query_kind::triangle_count;
  } else if (kind == "update") {
    out.kind = engine::query_kind::update;
    auto batch = std::make_shared<dynamic::update_batch>();
    std::string tok;
    while (ss >> tok) {
      if (tok[0] == '+' || tok[0] == '-') {
        auto comma = tok.find(',');
        if (comma == std::string::npos || comma + 1 >= tok.size())
          throw std::runtime_error("want +u,v (insert) or -u,v (delete): " +
                                   tok);
        edge e{static_cast<vertex_id>(std::stoull(tok.substr(1, comma - 1))),
               static_cast<vertex_id>(std::stoull(tok.substr(comma + 1)))};
        (tok[0] == '+' ? batch->inserts : batch->deletes).push_back(e);
      } else {
        read_batch_file(tok, *batch);
      }
    }
    if (batch->empty())
      throw std::runtime_error(
          "want '<graph> update <file | +u,v -u,v ...>': " + line);
    out.updates = std::move(batch);
  } else {
    throw std::runtime_error("unknown query kind '" + kind + "' in: " + line);
  }
  return true;
}

struct replay_report {
  size_t completed = 0;
  size_t failed = 0;
  size_t cancelled = 0;  // caller-cancelled requests (-cancel-rate)
  size_t deadline = 0;   // requests past their -deadline-ms budget
  size_t shed = 0;       // low-priority submissions shed under load
  size_t retries = 0;    // submissions re-attempted after admission rejection
  double wall_seconds = 0;
  double p50 = 0, p99 = 0;  // end-to-end latency, microseconds
};

// Replays requests through the executor, retrying rejected submissions
// (bounded backpressure -> the client waits, nothing is dropped) and
// honoring shed advice (sleep retry_after, then drop the request — shed
// traffic is droppable by contract). A `cancel_rate` fraction of requests
// is cancelled right after submission to exercise the cancel path. Latency
// is end-to-end: submission attempt to future resolution.
replay_report replay(engine::query_executor& ex,
                     const std::vector<engine::query_request>& requests,
                     double cancel_rate = 0.0) {
  replay_report rep;
  std::vector<std::future<engine::query_result>> futures;
  std::vector<monotonic_time> starts;
  std::vector<engine::cancel_source> sources;  // keep cancelled tokens alive
  futures.reserve(requests.size());
  starts.reserve(requests.size());
  rng cancel_draw(7);
  const monotonic_time wall0 = mono_now();
  for (size_t i = 0; i < requests.size(); i++) {
    engine::query_request req = requests[i];
    bool cancel_this =
        cancel_rate > 0.0 &&
        static_cast<double>(cancel_draw[i] % 10000) < cancel_rate * 10000.0;
    if (cancel_this) {
      sources.emplace_back();
      req.token = sources.back().token();
    }
    const monotonic_time t0 = mono_now();
    while (true) {
      try {
        futures.push_back(ex.submit(req));
        starts.push_back(t0);
        if (cancel_this) sources.back().request_cancel();
        break;
      } catch (const engine::shed_error& e) {
        rep.shed++;
        std::this_thread::sleep_for(e.retry_after);
        break;  // shed low-priority work is dropped, not retried
      } catch (const engine::rejected_error&) {
        rep.retries++;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  }
  std::vector<double> latencies;
  latencies.reserve(futures.size());
  for (size_t i = 0; i < futures.size(); i++) {
    try {
      futures[i].get();
      latencies.push_back(micros_since(starts[i]));
      rep.completed++;
    } catch (const engine::cancelled_error&) {
      rep.cancelled++;
    } catch (const engine::deadline_exceeded_error&) {
      rep.deadline++;
    } catch (const std::exception& e) {
      rep.failed++;
      std::fprintf(stderr, "request %zu failed: %s\n", i, e.what());
    }
  }
  rep.wall_seconds = micros_since(wall0) / 1e6;
  rep.p50 = percentile(latencies, 0.50);
  rep.p99 = percentile(latencies, 0.99);
  return rep;
}

void print_report(const char* label, const replay_report& r,
                  const engine::engine_stats_snapshot& snap) {
  std::printf(
      "%-6s %6zu ok %3zu failed | %8.2f req/s | p50 %9.1f us | p99 %9.1f us "
      "| cache %llu hits / %llu misses (%.1f%%) | rejected-retries %zu\n",
      label, r.completed, r.failed,
      r.wall_seconds > 0 ? static_cast<double>(r.completed) / r.wall_seconds : 0.0,
      r.p50, r.p99, static_cast<unsigned long long>(snap.cache.hits),
      static_cast<unsigned long long>(snap.cache.misses),
      100.0 * snap.cache.hit_rate(), r.retries);
  if (r.cancelled || r.deadline || r.shed)
    std::printf("%-6s %6zu cancelled, %zu deadline-exceeded, %zu shed\n",
                "", r.cancelled, r.deadline, r.shed);
}

// Mixed synthetic workload over the registered graphs: mostly point
// lookups (bfs/cc/kcore/sssp) with some heavier pagerank/triangle queries,
// drawn deterministically with repeated parameters so a warm replay hits.
std::vector<engine::query_request> synth_workload(engine::registry& reg,
                                                  size_t count) {
  auto infos = reg.list();
  std::vector<engine::query_request> reqs;
  reqs.reserve(count);
  rng r(42);
  for (size_t i = 0; i < count; i++) {
    const auto& info = infos[r[2 * i] % infos.size()];
    vertex_id n = info.num_vertices;
    // Draw vertices from a small pool (n/64) so the workload has repeats —
    // the regime where a result cache earns its keep.
    vertex_id pool = std::max<vertex_id>(1, n / 64);
    auto pick = [&](uint64_t salt) {
      return static_cast<vertex_id>(hash64(r[2 * i + 1] ^ salt) % pool);
    };
    engine::query_request q;
    q.graph = info.name;
    switch (r[2 * i + 1] % 10) {
      case 0: case 1: case 2:
        q.kind = engine::query_kind::bfs_distance;
        q.source = pick(1);
        q.target = pick(2);
        break;
      case 3: case 4:
        q.kind = info.weighted ? engine::query_kind::sssp_distance
                               : engine::query_kind::bfs_distance;
        q.source = pick(3);
        q.target = pick(4);
        break;
      case 5: case 6:
        q.kind = engine::query_kind::component_id;
        q.source = pick(5);
        break;
      case 7: case 8:
        q.kind = engine::query_kind::coreness;
        q.source = pick(6);
        break;
      default:
        q.kind = engine::query_kind::pagerank_topk;
        q.k = 5 + static_cast<uint32_t>(r[2 * i + 1] % 3) * 5;
        break;
    }
    reqs.push_back(std::move(q));
  }
  return reqs;
}

void print_stats(engine::query_executor& ex) {
  // Futures resolve just before the dispatcher clears its running count;
  // settle so the snapshot below reads 0 running after a drained replay.
  ex.wait_idle();
  auto s = ex.stats();
  std::printf("submitted %llu, completed %llu, failed %llu, rejected %llu, "
              "cancelled %llu, deadline-exceeded %llu, shed %llu; "
              "queue %zu, running %zu\n",
              static_cast<unsigned long long>(s.submitted),
              static_cast<unsigned long long>(s.completed),
              static_cast<unsigned long long>(s.failed),
              static_cast<unsigned long long>(s.rejected),
              static_cast<unsigned long long>(s.cancelled),
              static_cast<unsigned long long>(s.deadline_exceeded),
              static_cast<unsigned long long>(s.shed), s.queue_depth,
              s.running);
  std::printf("cache: %llu hits, %llu misses, %llu evictions (hit rate %.1f%%)\n",
              static_cast<unsigned long long>(s.cache.hits),
              static_cast<unsigned long long>(s.cache.misses),
              static_cast<unsigned long long>(s.cache.evictions),
              100.0 * s.cache.hit_rate());
  if (s.submitted > 0)
    std::printf("admission: shed %.1f%%, rejected %.1f%% of %llu submissions\n",
                100.0 * static_cast<double>(s.shed) /
                    static_cast<double>(s.submitted),
                100.0 * static_cast<double>(s.rejected) /
                    static_cast<double>(s.submitted),
                static_cast<unsigned long long>(s.submitted));
  for (size_t i = 0; i < engine::kNumQueryKinds; i++) {
    const auto& k = s.per_kind[i];
    if (k.count == 0) continue;
    std::printf("  %-10s %6llu executed, mean %9.1f us, p50 %9.1f, "
                "p95 %9.1f, p99 %9.1f, max %9.1f us\n",
                engine::query_kind_name(static_cast<engine::query_kind>(i)),
                static_cast<unsigned long long>(k.count), k.mean_micros(),
                k.p50_micros, k.p95_micros, k.p99_micros,
                static_cast<double>(k.max_micros));
  }
}

// -stats-interval: a background thread that reports per-kind latency
// digests (from the shared metrics registry, via the executor's histogram
// snapshots) and queue/running depth every `seconds` while work is in
// flight. Reports incremental counts since the previous tick so bursts are
// visible.
class periodic_reporter {
 public:
  periodic_reporter(engine::query_executor& ex, double seconds)
      : ex_(ex), seconds_(seconds) {
    if (seconds_ > 0) thread_ = std::thread([this] { loop(); });
  }
  ~periodic_reporter() {
    if (!thread_.joinable()) return;
    stop_.store(true);
    thread_.join();
  }

 private:
  void loop() {
    const monotonic_time start = mono_now();
    double next = seconds_;
    uint64_t last_count[engine::kNumQueryKinds] = {};
    while (!stop_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      if (seconds_since(start) < next) continue;
      next += seconds_;
      auto s = ex_.stats();  // histogram-backed p50/p95/p99 per kind
      std::printf("[stats %6.1fs] queue %zu running %zu\n",
                  seconds_since(start), s.queue_depth, s.running);
      for (size_t i = 0; i < engine::kNumQueryKinds; i++) {
        const auto& k = s.per_kind[i];
        if (k.count == 0) continue;
        std::printf("[stats %6.1fs]   %-10s %6llu done (+%llu), p50 %9.1f, "
                    "p95 %9.1f, p99 %9.1f us\n",
                    seconds_since(start),
                    engine::query_kind_name(static_cast<engine::query_kind>(i)),
                    static_cast<unsigned long long>(k.count),
                    static_cast<unsigned long long>(k.count - last_count[i]),
                    k.p50_micros, k.p95_micros, k.p99_micros);
        last_count[i] = k.count;
      }
      std::fflush(stdout);
    }
  }

  engine::query_executor& ex_;
  double seconds_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

// SIGINT/SIGTERM land on a self-pipe: the handler only write()s (the one
// async-signal-safe thing worth doing) and the daemon loop does the actual
// drain on a normal thread. A second signal while draining exits hard.
// SIGUSR1 shares the pipe with a distinct byte: the daemon loop dumps the
// flight recorder and keeps serving.
int g_signal_pipe[2] = {-1, -1};
std::atomic<int> g_signals_seen{0};

extern "C" void on_shutdown_signal(int) {
  if (g_signals_seen.fetch_add(1) > 0) std::_Exit(130);
  char b = 1;
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &b, 1);
}

extern "C" void on_flightrec_signal(int) {
  char b = 2;
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &b, 1);
}

// -listen daemon mode: serve until SIGINT/SIGTERM, then shut down in
// order — stop the network tier (its own bounded drain), drain the
// executor, checkpoint every durable graph so recovery starts from the
// freshest snapshot instead of a long WAL replay.
int run_daemon(engine::query_executor& ex, const command_line& cli) {
  net::server_options sopts;
  sopts.port = static_cast<uint16_t>(cli.get_int("listen", 0));
  sopts.http_port = static_cast<int>(cli.get_int("http-port", -1));
  sopts.bind_address = cli.has("bind") ? cli.get_string("bind") : "127.0.0.1";
  sopts.max_inflight_per_conn =
      static_cast<size_t>(cli.get_int("max-inflight", 32));
  sopts.drain_deadline =
      std::chrono::milliseconds(cli.get_int("drain-ms", 5000));
  net::server srv(ex, sopts);
  try {
    srv.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot start server: %s\n", e.what());
    return 1;
  }
  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "pipe() failed\n");
    return 1;
  }
  std::signal(SIGINT, on_shutdown_signal);
  std::signal(SIGTERM, on_shutdown_signal);
  std::signal(SIGUSR1, on_flightrec_signal);

  std::printf("serving queries on %s:%u", sopts.bind_address.c_str(),
              srv.port());
  if (sopts.http_port >= 0)
    std::printf(", /metrics + /healthz + /traces + /debug/flightrec on :%u",
                srv.http_port());
  std::printf(" (SIGINT/SIGTERM to drain and exit, SIGUSR1 to dump the "
              "flight recorder)\n");
  std::fflush(stdout);

  for (;;) {
    char b = 0;
    const ssize_t n = ::read(g_signal_pipe[0], &b, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0 || b != 2) break;  // byte 1 (or pipe failure): shut down
    // SIGUSR1: dump the flight recorder to stderr and keep serving.
    if (ex.flightrec() != nullptr)
      std::fprintf(stderr, "%s\n", ex.flightrec()->to_json().c_str());
    else
      std::fprintf(stderr, "{\"error\":\"flight recorder not attached\"}\n");
    std::fflush(stderr);
  }

  std::printf("shutdown: draining connections and in-flight queries...\n");
  std::fflush(stdout);
  srv.stop();
  const bool drained =
      ex.drain(std::chrono::milliseconds(cli.get_int("drain-ms", 5000)));
  size_t checkpointed = 0;
  for (const auto& g : ex.graphs().list()) {
    if (!ex.graphs().is_durable(g.name)) continue;
    try {
      ex.graphs().checkpoint(g.name);
      checkpointed++;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "checkpoint '%s' failed: %s\n", g.name.c_str(),
                   e.what());
    }
  }
  auto s = ex.stats();
  std::printf("shutdown: %s, %llu queries completed this run, "
              "%zu durable graph(s) checkpointed\n",
              drained ? "drained clean" : "drain deadline hit",
              static_cast<unsigned long long>(s.completed), checkpointed);
  return 0;
}

// -connect client mode: N connections, each a thread running its share of
// a deterministic mixed workload through run_retrying (so shed/rejected
// advice is honored, not fatal).
int run_client_mode(const command_line& cli) {
  const std::string target = cli.get_string("connect");
  auto colon = target.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "want -connect host:port, got %s\n", target.c_str());
    return 1;
  }
  const std::string host = target.substr(0, colon);
  const uint16_t port =
      static_cast<uint16_t>(std::stoul(target.substr(colon + 1)));
  const size_t conns = static_cast<size_t>(cli.get_int("conns", 4));
  const size_t total = static_cast<size_t>(cli.get_int("n", 1000));
  const std::string graph_name =
      cli.has("graph") ? cli.get_string("graph") : "social";
  const uint32_t deadline_ms =
      static_cast<uint32_t>(cli.get_int("deadline-ms", 0));

  std::atomic<size_t> ok{0}, errors{0}, sheds{0}, rejects{0};
  std::vector<std::vector<double>> lat(conns);
  std::vector<std::thread> threads;
  const monotonic_time wall0 = mono_now();
  for (size_t t = 0; t < conns; t++) {
    threads.emplace_back([&, t] {
      net::client c;
      try {
        c.connect(host, port);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "conn %zu: %s\n", t, e.what());
        errors.fetch_add(1);
        return;
      }
      rng r(17 + t);
      const size_t n = total / conns + (t < total % conns ? 1 : 0);
      size_t my_sheds = 0, my_rejects = 0;
      for (size_t i = 0; i < n; i++) {
        net::wire_request req;
        req.graph = graph_name;
        req.deadline_ms = deadline_ms;
        // Small vertex pool: repeats make the server's result cache earn
        // its keep, mirroring synth_workload.
        auto pick = [&](uint64_t salt) { return hash64(r[i] ^ salt) % 1024; };
        switch (r[i] % 4) {
          case 0:
            req.kind = engine::query_kind::bfs_distance;
            req.source = pick(1);
            req.target = pick(2);
            break;
          case 1:
            req.kind = engine::query_kind::component_id;
            req.source = pick(3);
            break;
          case 2:
            req.kind = engine::query_kind::coreness;
            req.source = pick(4);
            break;
          default:
            req.kind = engine::query_kind::pagerank_topk;
            req.k = 10;
            break;
        }
        const monotonic_time t0 = mono_now();
        try {
          c.run_retrying(req, 8, &my_sheds, &my_rejects);
          lat[t].push_back(micros_since(t0));
          ok.fetch_add(1);
        } catch (const std::exception& e) {
          if (errors.fetch_add(1) < 5)
            std::fprintf(stderr, "conn %zu request failed: %s\n", t, e.what());
          if (!c.connected()) return;  // connection gone; stop this thread
        }
      }
      sheds.fetch_add(my_sheds);
      rejects.fetch_add(my_rejects);
    });
  }
  for (auto& th : threads) th.join();
  const double wall = micros_since(wall0) / 1e6;

  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::printf("%zu connections, %zu ok, %zu failed in %.2f s "
              "(%.1f queries/sec)\n",
              conns, ok.load(), errors.load(), wall,
              wall > 0 ? static_cast<double>(ok.load()) / wall : 0.0);
  std::printf("latency p50 %.1f us, p95 %.1f us, p99 %.1f us; "
              "absorbed %zu sheds, %zu rejections\n",
              percentile(all, 0.50), percentile(all, 0.95),
              percentile(all, 0.99), sheds.load(), rejects.load());
  return errors.load() == 0 || ok.load() > 0 ? 0 : 1;
}

void repl(engine::query_executor& ex) {
  std::printf("query> "); std::fflush(stdout);
  std::string line;
  while (std::getline(std::cin, line)) {
    try {
      if (line == "quit" || line == "exit") break;
      if (line == "help") {
        std::printf("  <graph> bfs <s> <t> | sssp <s> <t> | pagerank <k> | "
                    "cc <v> | kcore <v> | triangles\n"
                    "  <graph> update <file | +u,v -u,v ...>   apply an edge "
                    "batch (mutable graphs; returns the new epoch)\n"
                    "  trace <request>   run a query with traversal tracing, "
                    "print the trace JSON\n"
                    "  trace <32-hex-id>   look up a retained trace by id "
                    "(slow-query log)\n"
                    "  checkpoint <graph>   snapshot a durable mutable graph "
                    "and reset its WAL\n"
                    "  wal-stats <graph>    durable store counters "
                    "(docs/DURABILITY.md)\n"
                    "  graphs | stats | metrics | clear-cache | quit\n");
      } else if (line == "metrics") {
        std::fputs(ex.metrics().render_text().c_str(), stdout);
      } else if (line.rfind("trace ", 0) == 0) {
        const std::string arg = line.substr(6);
        // A lone 32-hex token is a retained-trace lookup; anything else is
        // the original trace-a-request path.
        if (auto tid = obs::trace_id::from_hex(arg)) {
          if (ex.traces() == nullptr) {
            std::printf("trace retention is off (set -trace-sample or "
                        "-slow-trace-ms)\n");
          } else if (auto rec = ex.traces()->find(*tid)) {
            std::printf("%s\n", rec->to_json(/*full=*/true).c_str());
          } else {
            std::printf("no retained trace with id %s\n", arg.c_str());
          }
        } else {
          engine::query_request req;
          if (parse_request(arg, req)) {
            obs::query_trace trace;
            req.trace = &trace;
            auto r = ex.run(req);
            std::printf("  = %lld   (%.1f us)\n",
                        static_cast<long long>(r.value), r.micros);
            std::printf("%s\n", trace.to_json().c_str());
          }
        }
      } else if (line == "graphs") {
        for (const auto& g : ex.graphs().list()) {
          std::printf("  %-12s epoch %llu, %u vertices, %llu edges, %.1f MB%s",
                      g.name.c_str(), static_cast<unsigned long long>(g.epoch),
                      g.num_vertices,
                      static_cast<unsigned long long>(g.num_edges),
                      static_cast<double>(g.memory_bytes) / 1e6,
                      g.weighted ? ", weighted" : "");
          if (g.is_mutable)
            std::printf(", mutable (v%llu, %zu delta edges)",
                        static_cast<unsigned long long>(g.version),
                        g.delta_edges);
          std::printf("\n");
        }
      } else if (line == "stats") {
        print_stats(ex);
      } else if (line.rfind("checkpoint ", 0) == 0) {
        const std::string name = line.substr(11);
        ex.graphs().checkpoint(name);
        auto ws = ex.graphs().wal_stats(name);
        std::printf("  checkpointed '%s' at seq %llu (wal reset, %llu "
                    "checkpoints this run)\n",
                    name.c_str(),
                    static_cast<unsigned long long>(ws.checkpoint_seq),
                    static_cast<unsigned long long>(ws.checkpoints));
      } else if (line.rfind("wal-stats ", 0) == 0) {
        const std::string name = line.substr(10);
        auto ws = ex.graphs().wal_stats(name);
        std::printf("  dir %s (fsync=%s)\n"
                    "  wal: base seq %llu, last seq %llu, %llu bytes, "
                    "%llu appends, %llu fsyncs\n"
                    "  checkpoints: newest at seq %llu, %llu written, "
                    "%llu batches since\n",
                    ws.dir.c_str(), ws.fsync.c_str(),
                    static_cast<unsigned long long>(ws.base_seq),
                    static_cast<unsigned long long>(ws.last_seq),
                    static_cast<unsigned long long>(ws.wal_bytes),
                    static_cast<unsigned long long>(ws.appends),
                    static_cast<unsigned long long>(ws.fsyncs),
                    static_cast<unsigned long long>(ws.checkpoint_seq),
                    static_cast<unsigned long long>(ws.checkpoints),
                    static_cast<unsigned long long>(ws.since_checkpoint));
      } else if (line == "clear-cache") {
        ex.cache().clear();
      } else {
        engine::query_request req;
        if (parse_request(line, req)) {
          auto r = ex.run(req);
          if (req.kind == engine::query_kind::pagerank_topk) {
            for (const auto& [v, rank] : r.topk)
              std::printf("  %u: %.6f\n", v, rank);
          } else {
            std::printf("  = %lld", static_cast<long long>(r.value));
          }
          std::printf("   (%.1f us%s)\n", r.micros,
                      r.cache_hit ? ", cached" : "");
        }
      }
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
    std::printf("query> "); std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char* argv[]) {
  command_line cli(argc, argv);
  // Client mode needs no graphs or executor of its own — it talks to a
  // daemon that has them.
  if (cli.has("connect")) return run_client_mode(cli);
  // One shared metrics registry for the whole process: graph residency,
  // executor, cache, scheduler, and failpoints all publish into it, so
  // `-metrics-dump` / the REPL `metrics` command scrape everything at once.
  obs::metrics_registry metrics;
  obs::install_failpoint_collector(metrics);
  obs::install_scheduler_collector(metrics);

  // Structured logging: one process-wide logger behind every converted
  // warning site (docs/OBSERVABILITY.md). Drops are counted into
  // engine_log_dropped_total via the shared registry.
  if (cli.has("log-level")) {
    obs::log_level lvl;
    if (!obs::parse_log_level(cli.get_string("log-level"), &lvl)) {
      std::fprintf(stderr,
                   "bad -log-level (want debug|info|warn|error|off): %s\n",
                   cli.get_string("log-level").c_str());
      return 1;
    }
    obs::logger::global().set_level(lvl);
  }
  if (cli.has("log-json")) obs::logger::global().set_json(true);
  obs::logger::global().set_metrics(&metrics);

  engine::registry reg(&metrics);

  // Durability: -wal-dir roots the per-graph stores; -fsync and
  // -checkpoint-interval tune the policy (docs/DURABILITY.md).
  durability_config dcfg;
  dcfg.wal_dir = cli.get_string("wal-dir");
  try {
    if (cli.has("fsync"))
      dcfg.dur.wal.fsync = dynamic::parse_fsync_policy(cli.get_string("fsync"));
    if (cli.has("checkpoint-interval"))
      dcfg.dur.checkpoint_interval =
          static_cast<uint32_t>(cli.get_int("checkpoint-interval", 64));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad durability flag: %s\n", e.what());
    return 1;
  }
  if (!dcfg.wal_dir.empty())
    std::printf("durable mutable graphs under %s (fsync=%s, "
                "checkpoint every %u batches)\n",
                dcfg.wal_dir.c_str(),
                dynamic::fsync_policy_name(dcfg.dur.wal.fsync),
                dcfg.dur.checkpoint_interval);

  // Graphs: explicit -load specs, else the built-in demo pair.
  bool loaded = false;
  try {
    for (const auto& pos : cli.positional()) {
      if (pos.find('=') != std::string::npos) {
        load_spec(reg, pos, dcfg);
        loaded = true;
      }
    }
    if (cli.has("load")) {
      load_spec(reg, cli.get_string("load"), dcfg);
      loaded = true;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "load failed: %s\n", e.what());
    return 1;
  }
  if (!loaded) {
    // Demo residents: a power-law "social" graph, a weighted 3-D torus
    // "road" network — the two traversal regimes of the paper — and a
    // mutable power-law "feed" graph for `update` requests.
    std::printf("registering demo graphs (use -load name=path to override)\n");
    reg.add("social", gen::rmat_graph(/*scale=*/14, /*num_edges=*/1 << 18));
    reg.add("road",
            gen::add_random_weights(gen::grid3d_graph(/*side=*/24), 1, 16));
    add_mutable_graph(reg, "feed", dcfg, [] {
      return gen::rmat_graph(/*scale=*/13, /*num_edges=*/1 << 16);
    });
  }
  for (const auto& g : reg.list())
    std::printf("  resident: %-8s %u vertices, %llu edges%s\n", g.name.c_str(),
                g.num_vertices, static_cast<unsigned long long>(g.num_edges),
                g.weighted ? " (weighted)" : "");

  engine::executor_options opts;
  opts.max_concurrency = static_cast<size_t>(cli.get_int("conc", 0));
  opts.max_queue = static_cast<size_t>(cli.get_int("queue", 256));
  opts.cache_capacity = static_cast<size_t>(cli.get_int("cache", 4096));
  opts.use_pool = !cli.has("no-pool");
  opts.shed_watermark =
      static_cast<size_t>(cli.get_int("shed-watermark", 0));
  // Batched execution (docs/ENGINE.md): coalesce concurrent bfs queries
  // into one bit-parallel multi-BFS. Opportunistic coalescing is on by
  // default; -batch-window-us adds a collection window, -batch-max 1
  // disables batching outright.
  opts.batch_max = static_cast<size_t>(cli.get_int("batch-max", 64));
  opts.batch_window_micros =
      static_cast<uint64_t>(cli.get_int("batch-window-us", 0));
  opts.metrics = &metrics;

  // Query observability: trace retention ring + flight recorder, always
  // attached so GET /traces, /debug/flightrec, SIGUSR1, and the REPL's
  // `trace <id>` work out of the box. -trace-sample / -slow-trace-ms widen
  // what the store keeps beyond errors.
  obs::trace_store traces(
      static_cast<size_t>(cli.get_int("trace-capacity", 256)), &metrics);
  obs::flight_recorder flightrec(
      static_cast<size_t>(cli.get_int("flightrec-capacity", 512)));
  opts.traces = &traces;
  opts.flightrec = &flightrec;
  opts.trace_sample_rate = cli.get_double("trace-sample", 0.0);
  opts.slow_trace_micros =
      static_cast<uint64_t>(cli.get_int("slow-trace-ms", 0)) * 1000;
  engine::query_executor ex(reg, opts);

  if (cli.has("failpoints")) {
    try {
      ligra::util::failpoint::configure(cli.get_string("failpoints"));
      if (!ligra::util::failpoint::compiled_in())
        std::fprintf(stderr,
                     "warning: failpoints compiled out "
                     "(LIGRA_FAILPOINTS_ENABLED=OFF); -failpoints ignored\n");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad -failpoints spec: %s\n", e.what());
      return 1;
    }
  }

  // -metrics-dump [text|json]: full registry exposition at exit.
  auto maybe_dump_metrics = [&] {
    if (!cli.has("metrics-dump")) return;
    if (cli.get_string("metrics-dump") == "json")
      std::printf("%s\n", metrics.render_json().c_str());
    else
      std::fputs(metrics.render_text().c_str(), stdout);
  };

  if (cli.has("listen")) {
    int rc = run_daemon(ex, cli);
    maybe_dump_metrics();
    return rc;
  }

  if (cli.has("repl")) {
    repl(ex);
    maybe_dump_metrics();
    return 0;
  }

  std::vector<engine::query_request> requests;
  if (cli.has("requests")) {
    std::string path = cli.get_string("requests");
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open request file: %s\n", path.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      engine::query_request req;
      if (parse_request(line, req)) requests.push_back(std::move(req));
    }
    std::printf("replaying %zu requests from %s\n", requests.size(),
                path.c_str());
  } else {
    size_t n = static_cast<size_t>(cli.get_int("n", 1000));
    requests = synth_workload(reg, n);
    std::printf("replaying %zu synthetic mixed requests\n", requests.size());
  }

  // Robustness knobs applied to the whole workload.
  const int64_t deadline_ms = cli.get_int("deadline-ms", 0);
  const double cancel_rate = cli.get_double("cancel-rate", 0.0);
  const double low_rate = cli.get_double("low-rate", 0.0);
  if (deadline_ms > 0)
    for (auto& q : requests) q.deadline = std::chrono::milliseconds(deadline_ms);
  if (low_rate > 0.0) {
    rng low_draw(11);
    for (size_t i = 0; i < requests.size(); i++)
      if (static_cast<double>(low_draw[i] % 10000) < low_rate * 10000.0)
        requests[i].priority = engine::query_priority::low;
  }

  // Cold pass (empty cache), then warm pass over the identical workload.
  periodic_reporter reporter(ex, cli.get_double("stats-interval", 0.0));
  ex.cache().clear();
  auto cold = replay(ex, requests, cancel_rate);
  auto cold_snap = ex.stats();
  print_report("cold", cold, cold_snap);
  auto warm = replay(ex, requests, cancel_rate);
  auto warm_snap = ex.stats();
  print_report("warm", warm, warm_snap);

  std::printf("\nwarm p50 %.1f us vs cold p50 %.1f us (%.1fx); "
              "cache served %llu of %zu warm requests\n",
              warm.p50, cold.p50, warm.p50 > 0 ? cold.p50 / warm.p50 : 0.0,
              static_cast<unsigned long long>(warm_snap.cache.hits -
                                              cold_snap.cache.hits),
              requests.size());
  std::printf("\n");
  print_stats(ex);
  maybe_dump_metrics();
  return 0;
}

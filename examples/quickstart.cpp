// Quickstart: build a small graph, write your first edge_map traversal,
// and run a framework application — the five-minute tour of the API.
//
//   ./examples/quickstart
//
// Walks through:
//   1. constructing a graph from an edge list,
//   2. the vertex_subset / edge_map programming model (a hand-rolled BFS,
//      the paper's Figure 2 in ~20 lines),
//   3. calling the packaged applications.
#include <cstdio>

#include "apps/apps.h"
#include "ligra/ligra.h"

using namespace ligra;

namespace {

// The update functor of the paper's BFS (Figure 2): try to claim v's
// parent slot; v joins the next frontier when first claimed.
struct bfs_f {
  vertex_id* parents;
  bool update(vertex_id u, vertex_id v) const {  // dense (pull) path
    if (parents[v] == kNoVertex) {
      parents[v] = u;
      return true;
    }
    return false;
  }
  bool update_atomic(vertex_id u, vertex_id v) const {  // sparse (push) path
    return compare_and_swap(&parents[v], kNoVertex, u);
  }
  bool cond(vertex_id v) const {  // skip already-claimed targets
    return atomic_load(&parents[v]) == kNoVertex;
  }
};

}  // namespace

int main() {
  std::printf("Ligra quickstart — %d workers\n\n", parallel::num_workers());

  // 1. Build a graph. Vertices are dense ids [0, n); edges are pairs.
  //    symmetrize=true inserts both directions (an undirected graph).
  std::vector<edge> edges = {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}};
  graph g = graph::from_edges(6, edges, {.symmetrize = true});
  std::printf("built graph: %u vertices, %lu directed edges\n",
              g.num_vertices(),
              static_cast<unsigned long>(g.num_edges()));

  // 2. A BFS with the core API: start from a singleton frontier and apply
  //    edge_map until the frontier empties. edge_map picks push- or
  //    pull-based traversal automatically per round.
  std::vector<vertex_id> parents(g.num_vertices(), kNoVertex);
  parents[0] = 0;
  vertex_subset frontier(g.num_vertices(), vertex_id{0});
  int round = 0;
  while (!frontier.empty()) {
    frontier = edge_map(g, frontier, bfs_f{parents.data()});
    std::printf("  round %d: frontier size %zu\n", ++round, frontier.size());
  }
  std::printf("BFS parents:");
  for (vertex_id v = 0; v < g.num_vertices(); v++)
    std::printf(" %u<-%u", v, parents[v]);
  std::printf("\n\n");

  // 3. The packaged applications do the same and more.
  auto bfs = apps::bfs(g, 0);
  std::printf("apps::bfs reached %zu vertices in %zu rounds\n",
              bfs.num_reached, bfs.num_rounds);

  auto cc = apps::connected_components(g);
  std::printf("connected components: %zu\n", cc.num_components);

  auto pr = apps::pagerank(g);
  vertex_id best = 0;
  for (vertex_id v = 1; v < g.num_vertices(); v++)
    if (pr.rank[v] > pr.rank[best]) best = v;
  std::printf("pagerank: highest-ranked vertex is %u (%.4f) after %zu iters\n",
              best, pr.rank[best], pr.num_iterations);

  // Weighted algorithms take a wgraph.
  wgraph wg = gen::add_random_weights(g, 1, 5, /*seed=*/42);
  auto sssp = apps::bellman_ford(wg, 0);
  std::printf("bellman-ford: dist(0 -> 5) = %ld\n",
              static_cast<long>(sssp.distances[5]));
  return 0;
}

// Road-network routing — the high-diameter, bounded-degree regime
// (the paper's 3d-grid input models meshes/road-like networks, the
// opposite extreme from social graphs). A synthetic "road grid" (torus
// with random travel times) is routed three ways:
//
//   * serial Dijkstra (the strong sequential baseline),
//   * the paper's Bellman-Ford (frontier relaxation),
//   * Δ-stepping over the bucket structure, sweeping Δ,
//
// and the route-length statistics are summarized — demonstrating that all
// approaches agree and showing where each wins on this topology.
//
//   ./examples/road_network_sssp [-side 48] [-maxw 20]
#include <algorithm>
#include <cstdio>

#include "apps/bellman_ford.h"
#include "apps/bfs.h"
#include "apps/delta_stepping.h"
#include "baseline/serial.h"
#include "ligra/ligra.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

using namespace ligra;

int main(int argc, char** argv) {
  command_line cl(argc, argv);
  const auto side = static_cast<vertex_id>(cl.get_int("side", 48));
  const auto maxw = static_cast<int32_t>(cl.get_int("maxw", 20));

  timer t;
  graph base = gen::grid3d_graph(side);
  wgraph roads = gen::add_random_weights(base, 1, maxw, /*seed=*/7);
  std::printf("road grid: %s intersections, %s road segments, travel times "
              "1..%d  [built in %s]\n",
              format_count(roads.num_vertices()).c_str(),
              format_count(roads.num_edges()).c_str(), maxw,
              format_seconds(t.next_lap()).c_str());

  const vertex_id depot = 0;

  // Route with each algorithm.
  t.next_lap();
  auto dij = baseline::dijkstra(roads, depot);
  double t_dij = t.next_lap();

  auto bf = apps::bellman_ford(roads, depot);
  double t_bf = t.next_lap();

  table_printer results({"Algorithm", "Time", "Agrees with Dijkstra"});
  results.add_row({"Dijkstra (serial)", format_seconds(t_dij), "--"});
  results.add_row({"Bellman-Ford", format_seconds(t_bf),
                   bf.distances == dij ? "yes" : "NO"});
  for (int64_t delta : {1, maxw / 2 + 1, 2 * maxw}) {
    t.next_lap();
    auto ds = apps::delta_stepping(roads, depot, delta);
    double t_ds = t.next_lap();
    results.add_row({"Δ-stepping (Δ=" + std::to_string(delta) + ")",
                     format_seconds(t_ds),
                     ds.distances == dij ? "yes" : "NO"});
  }
  std::printf("\n");
  results.print();

  // Route-length statistics from the depot (cf. the route-length statistic
  // of Aldous & Shun for spatial networks).
  std::vector<int64_t> reached;
  reached.reserve(dij.size());
  for (int64_t d : dij)
    if (d != apps::kInfiniteDistance) reached.push_back(d);
  std::sort(reached.begin(), reached.end());
  auto pct = [&](double p) {
    return reached[static_cast<size_t>(p * (reached.size() - 1))];
  };
  std::printf("\nroute-length statistics from depot %u (%zu reachable):\n",
              depot, reached.size());
  std::printf("  min %ld   p50 %ld   p90 %ld   p99 %ld   max %ld\n",
              (long)reached.front(), (long)pct(0.5), (long)pct(0.9),
              (long)pct(0.99), (long)reached.back());

  // Hop-count comparison (unweighted BFS): how different is "fewest roads"
  // from "fastest route"?
  auto hops = apps::bfs(base, depot);
  std::printf("  network hop-diameter from depot: %zu rounds (unweighted "
              "BFS)\n",
              hops.num_rounds);
  return 0;
}

// graph_tool — the command-line driver mirroring the original Ligra
// release's per-application binaries, folded into one tool:
//
//   graph_tool <app> [options] <graph-file>
//   graph_tool <app> [options] -gen <generator> [-scale S] [-degree D]
//
// apps:       bfs bc radii eccentricity components components-shortcut
//             components-decomposition pagerank pagerank-delta
//             bellman-ford delta-stepping wbfs kcore mis triangle stats
// generators: rmat random randlocal grid3d path star
// options:    -s            input file is symmetric (Ligra's -s flag)
//             -r <v>        source vertex (default 0)
//             -rounds <k>   timing repetitions (default 3, reports best)
//             -workers <p>  worker threads
//             -binary       graph file is in binary format
//             -delta <d>    Δ for delta-stepping (default 4)
//             -maxw <w>     max random weight for weighted apps on
//                           generated/unweighted inputs (default 20)
//
// Examples:
//   graph_tool bfs -gen rmat -scale 18
//   graph_tool components -s my_graph.adj
//   graph_tool bellman-ford -gen grid3d -scale 15 -r 7
#include <cstdio>
#include <functional>
#include <string>

#include "apps/apps.h"
#include "ligra/ligra.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

using namespace ligra;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: graph_tool <app> [-s] [-r src] [-rounds k] "
               "[-workers p] (<file> | -gen <kind> [-scale S] [-degree D])\n"
               "  apps: bfs bc radii eccentricity components\n"
               "        components-shortcut components-decomposition\n"
               "        pagerank pagerank-delta bellman-ford delta-stepping\n"
               "        wbfs kcore mis triangle stats\n"
               "  generators: rmat random randlocal grid3d path star\n");
  return 2;
}

graph load_or_generate(const command_line& cl) {
  if (cl.has("gen")) {
    std::string kind = cl.get_string("gen");
    int scale = static_cast<int>(cl.get_int("scale", 16));
    auto degree = static_cast<size_t>(cl.get_int("degree", 16));
    auto n = vertex_id{1} << scale;
    if (kind == "rmat") return gen::rmat_graph(scale, degree << scale, 1);
    if (kind == "rmat-directed")
      return gen::rmat_digraph(scale, degree << scale, 1);
    if (kind == "random") return gen::random_graph(n, degree, 1);
    if (kind == "randlocal") return gen::random_local_graph(n, degree, 1);
    if (kind == "grid3d") {
      vertex_id side = 1;
      while ((side + 1) * (side + 1) * (side + 1) <= n) side++;
      return gen::grid3d_graph(side);
    }
    if (kind == "path") return gen::path_graph(n);
    if (kind == "star") return gen::star_graph(n);
    throw std::runtime_error("unknown generator: " + kind);
  }
  std::string path = cl.positional_or(1);
  if (path.empty()) throw std::runtime_error("no input graph given");
  if (cl.has("binary")) return io::read_binary_graph(path);
  return io::read_adjacency_graph(path, cl.has("s"));
}

}  // namespace

int main(int argc, char** argv) {
  command_line cl(argc, argv);
  if (cl.positional().empty()) return usage();
  const std::string app = cl.positional()[0];
  if (cl.has("workers"))
    parallel::set_num_workers(static_cast<int>(cl.get_int("workers", 1)));

  try {
    timer load;
    graph g = load_or_generate(cl);
    std::printf("graph: n=%u m=%lu symmetric=%d  [loaded in %s]\n",
                g.num_vertices(), static_cast<unsigned long>(g.num_edges()),
                g.symmetric(), format_seconds(load.elapsed()).c_str());

    const auto src = static_cast<vertex_id>(cl.get_int("r", 0));
    const int rounds = static_cast<int>(cl.get_int("rounds", 3));
    const auto maxw = static_cast<int32_t>(cl.get_int("maxw", 20));
    const auto delta = static_cast<int64_t>(cl.get_int("delta", 4));

    std::function<std::string()> run;
    wgraph wg;  // built lazily for the weighted apps
    if (app == "bellman-ford" || app == "delta-stepping" || app == "wbfs")
      wg = gen::add_random_weights(g, 1, maxw, 9);

    if (app == "bfs") {
      run = [&] {
        auto r = apps::bfs(g, src);
        return "reached " + std::to_string(r.num_reached) + " in " +
               std::to_string(r.num_rounds) + " rounds";
      };
    } else if (app == "bc") {
      run = [&] {
        auto r = apps::bc(g, src);
        return std::to_string(r.num_rounds) + " rounds";
      };
    } else if (app == "radii") {
      run = [&] {
        auto r = apps::radii_estimate(g);
        return "diameter estimate " + std::to_string(r.diameter_estimate);
      };
    } else if (app == "eccentricity") {
      run = [&] {
        auto r = apps::eccentricity_two_pass(g);
        return "diameter estimate " + std::to_string(r.diameter_estimate);
      };
    } else if (app == "components") {
      run = [&] {
        auto r = apps::connected_components(g);
        return std::to_string(r.num_components) + " components";
      };
    } else if (app == "components-shortcut") {
      run = [&] {
        auto r = apps::connected_components_shortcut(g);
        return std::to_string(r.num_components) + " components in " +
               std::to_string(r.num_rounds) + " rounds";
      };
    } else if (app == "components-decomposition") {
      run = [&] {
        auto r = apps::connected_components_decomposition(g);
        return std::to_string(r.num_components) + " components at " +
               std::to_string(r.num_levels) + " levels";
      };
    } else if (app == "pagerank") {
      run = [&] {
        auto r = apps::pagerank(g);
        return std::to_string(r.num_iterations) + " iterations";
      };
    } else if (app == "pagerank-delta") {
      run = [&] {
        auto r = apps::pagerank_delta(g);
        return std::to_string(r.num_iterations) + " iterations";
      };
    } else if (app == "bellman-ford") {
      run = [&] {
        auto r = apps::bellman_ford(wg, src);
        return std::to_string(r.num_rounds) + " rounds";
      };
    } else if (app == "delta-stepping") {
      run = [&] {
        auto r = apps::delta_stepping(wg, src, delta);
        return std::to_string(r.num_buckets_processed) + " buckets";
      };
    } else if (app == "wbfs") {
      run = [&] {
        auto r = apps::weighted_bfs(wg, src);
        return std::to_string(r.num_buckets_processed) + " buckets";
      };
    } else if (app == "stats") {
      run = [&] {
        auto s = compute_degree_stats(g);
        return "deg[min " + std::to_string(s.min_degree) + ", avg " +
               format_double(s.avg_degree, 1) + ", max " +
               std::to_string(s.max_degree) + "], isolated " +
               std::to_string(s.isolated_vertices) +
               (validate_graph(g) ? ", valid CSR" : ", INVALID CSR");
      };
    } else if (app == "kcore") {
      run = [&] {
        auto r = apps::kcore(g);
        return "max core " + std::to_string(r.max_core);
      };
    } else if (app == "mis") {
      run = [&] {
        auto r = apps::maximal_independent_set(g);
        return "set size " + std::to_string(r.set_size);
      };
    } else if (app == "triangle") {
      run = [&] {
        auto r = apps::triangle_count(g);
        return std::to_string(r.num_triangles) + " triangles";
      };
    } else {
      return usage();
    }

    double best = 0;
    std::string info;
    for (int i = 0; i < rounds; i++) {
      timer t;
      info = run();
      t.stop();
      if (i == 0 || t.elapsed() < best) best = t.elapsed();
      std::printf("  run %d: %s  (%s)\n", i + 1,
                  format_seconds(t.elapsed()).c_str(), info.c_str());
    }
    std::printf("%s on %d workers: best %s — %s\n", app.c_str(),
                parallel::num_workers(), format_seconds(best).c_str(),
                info.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

// Recommender system — collaborative filtering on a synthetic user-item
// ratings graph (the CF application of the original Ligra release).
// Trains latent factors by parallel SGD sweeps, reports the RMSE learning
// curve, then produces top-N "you might also like" recommendations for a
// few users from the learned embedding.
//
//   ./examples/recommender [-users 2000] [-items 500] [-ratings 40]
//                          [-dims 8] [-sweeps 20]
#include <algorithm>
#include <cstdio>

#include "apps/collaborative_filtering.h"
#include "ligra/ligra.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

using namespace ligra;

int main(int argc, char** argv) {
  command_line cl(argc, argv);
  const auto n_users = static_cast<vertex_id>(cl.get_int("users", 2000));
  const auto n_items = static_cast<vertex_id>(cl.get_int("items", 500));
  const auto ratings = static_cast<size_t>(cl.get_int("ratings", 40));
  apps::cf_options opts;
  opts.dimensions = static_cast<int>(cl.get_int("dims", 8));
  opts.sweeps = static_cast<size_t>(cl.get_int("sweeps", 20));

  timer t;
  wgraph g = apps::synthetic_ratings(n_users, n_items, ratings,
                                     /*hidden_dim=*/4, /*seed=*/1);
  std::printf("ratings graph: %s users x %s items, %s ratings  [%s]\n",
              format_count(n_users).c_str(), format_count(n_items).c_str(),
              format_count(g.num_edges() / 2).c_str(),
              format_seconds(t.next_lap()).c_str());

  auto model = apps::collaborative_filtering(g, opts);
  std::printf("trained %d-dim model, %zu sweeps  [%s]\n", opts.dimensions,
              opts.sweeps, format_seconds(t.next_lap()).c_str());

  std::printf("\nRMSE learning curve:\n  ");
  for (size_t i = 0; i < model.rmse_history.size(); i++) {
    if (i % 4 == 0 || i + 1 == model.rmse_history.size())
      std::printf("sweep %zu: %.3f   ", i, model.rmse_history[i]);
  }
  std::printf("\n");

  // Recommendations: for a few users, rank unrated items by predicted
  // rating.
  std::printf("\ntop-3 recommendations (unrated items):\n");
  table_printer recs({"User", "#1 (pred)", "#2 (pred)", "#3 (pred)"});
  for (vertex_id user : {vertex_id{0}, vertex_id{1}, vertex_id{2}}) {
    std::vector<uint8_t> rated(g.num_vertices(), 0);
    for (vertex_id item : g.out_neighbors(user)) rated[item] = 1;
    std::vector<std::pair<double, vertex_id>> scored;
    for (vertex_id item = n_users; item < n_users + n_items; item++) {
      if (!rated[item])
        scored.emplace_back(model.predict(user, item), item);
    }
    std::partial_sort(scored.begin(),
                      scored.begin() + std::min<size_t>(3, scored.size()),
                      scored.end(), std::greater<>());
    std::vector<std::string> row = {"user " + std::to_string(user)};
    for (size_t i = 0; i < 3 && i < scored.size(); i++) {
      row.push_back("item " + std::to_string(scored[i].second - n_users) +
                    " (" + format_double(scored[i].first, 2) + ")");
    }
    while (row.size() < 4) row.push_back("--");
    recs.add_row(row);
  }
  recs.print();
  return 0;
}

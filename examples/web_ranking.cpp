// Web ranking — PageRank on a *directed* web-like graph (the paper's other
// motivating domain). Demonstrates:
//
//   * directed graphs and their automatically-maintained transpose
//     (PageRank pulls over in-edges in dense edge_map rounds),
//   * convergence of power iteration vs PageRank-Delta at matching
//     tolerance, with the active-set decay that makes Delta cheap,
//   * saving/loading the graph in the Ligra AdjacencyGraph format so the
//     result can be reproduced with the original Ligra release.
//
//   ./examples/web_ranking [-scale 16] [-eps 1e-7] [-save /tmp/web.adj]
#include <algorithm>
#include <cstdio>

#include "apps/pagerank.h"
#include "ligra/ligra.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

using namespace ligra;

int main(int argc, char** argv) {
  command_line cl(argc, argv);
  const int scale = static_cast<int>(cl.get_int("scale", 16));
  const double eps = cl.get_double("eps", 1e-7);

  timer t;
  graph web = gen::rmat_digraph(scale, edge_id{16} << scale, /*seed=*/5);
  std::printf("web graph (directed rMat): %s pages, %s links  [%s]\n",
              format_count(web.num_vertices()).c_str(),
              format_count(web.num_edges()).c_str(),
              format_seconds(t.next_lap()).c_str());

  if (cl.has("save")) {
    std::string path = cl.get_string("save");
    io::write_adjacency_graph(path, web);
    std::printf("saved AdjacencyGraph to %s\n", path.c_str());
  }

  apps::pagerank_options po;
  po.tolerance = eps;
  po.max_iterations = 200;
  auto pr = apps::pagerank(web, po);
  double t_pr = t.next_lap();

  apps::pagerank_delta_options dopts;
  dopts.tolerance = eps;
  dopts.max_iterations = 200;
  auto prd = apps::pagerank_delta(web, dopts);
  double t_prd = t.next_lap();

  double l1 = 0;
  for (size_t v = 0; v < pr.rank.size(); v++)
    l1 += std::abs(pr.rank[v] - prd.rank[v]);

  table_printer cmp({"Variant", "Time", "Iterations", "Final residual"});
  cmp.add_row({"PageRank (power iteration)", format_seconds(t_pr),
               std::to_string(pr.num_iterations),
               format_double(pr.final_residual, 9)});
  cmp.add_row({"PageRank-Delta", format_seconds(t_prd),
               std::to_string(prd.num_iterations),
               format_double(prd.final_residual, 9)});
  cmp.print();
  std::printf("L1 distance between the two rank vectors: %.2e\n", l1);

  std::printf("\nPageRank-Delta active pages per round:\n  ");
  for (size_t i = 0; i < prd.active_history.size(); i++) {
    std::printf("%s%s", format_count(prd.active_history[i]).c_str(),
                i + 1 < prd.active_history.size() ? " -> " : "\n");
    if (i == 11 && prd.active_history.size() > 14) {
      std::printf("... -> %s\n",
                  format_count(prd.active_history.back()).c_str());
      break;
    }
  }

  // Top pages.
  const size_t k = 5;
  std::vector<vertex_id> order(web.num_vertices());
  for (vertex_id v = 0; v < web.num_vertices(); v++) order[v] = v;
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](vertex_id a, vertex_id b) {
                      return pr.rank[a] > pr.rank[b];
                    });
  std::printf("\ntop pages by rank:\n");
  table_printer top({"Page", "Rank", "In-links", "Out-links"});
  for (size_t i = 0; i < k; i++) {
    vertex_id v = order[i];
    top.add_row({std::to_string(v), format_double(pr.rank[v], 6),
                 format_count(web.in_degree(v)),
                 format_count(web.out_degree(v))});
  }
  top.print();
  return 0;
}

// Social-network analysis — the workload class the paper's introduction
// motivates (social networks, the Web graph). Generates an rMat graph
// (the standard synthetic stand-in for such power-law networks), then
// runs an analyst's pipeline:
//
//   * degree distribution summary (verify the power-law shape)
//   * connected components and giant-component fraction
//   * PageRank top-k influencers
//   * single-source betweenness from the top influencer
//   * triangle count and global clustering coefficient
//   * k-core decomposition (community "cohesion" profile)
//
//   ./examples/social_network_analysis [-scale 16] [-degree 16] [-top 10]
#include <algorithm>
#include <cstdio>

#include "apps/apps.h"
#include "ligra/ligra.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

using namespace ligra;

int main(int argc, char** argv) {
  command_line cl(argc, argv);
  const int scale = static_cast<int>(cl.get_int("scale", 16));
  const auto degree = static_cast<edge_id>(cl.get_int("degree", 16));
  const size_t top_k = static_cast<size_t>(cl.get_int("top", 10));

  timer t;
  graph g = gen::rmat_graph(scale, degree << scale, /*seed=*/1);
  std::printf("social graph (rMat): %s vertices, %s edges  [built in %s]\n",
              format_count(g.num_vertices()).c_str(),
              format_count(g.num_edges()).c_str(),
              format_seconds(t.next_lap()).c_str());

  // Degree distribution: count vertices per log2-degree bucket.
  const vertex_id n = g.num_vertices();
  std::vector<size_t> buckets(33, 0);
  for (vertex_id v = 0; v < n; v++) {
    size_t d = g.out_degree(v);
    int b = 0;
    while ((size_t{1} << b) < d + 1) b++;
    buckets[static_cast<size_t>(b)]++;
  }
  std::printf("\ndegree histogram (log2 buckets):\n");
  for (size_t b = 0; b < buckets.size(); b++) {
    if (buckets[b] == 0) continue;
    std::printf("  deg <%6lu : %s\n", (unsigned long)(1ul << b),
                format_count(buckets[b]).c_str());
  }

  // Components: how much of the network is one connected blob?
  auto cc = apps::connected_components(g);
  std::vector<size_t> size_of(n, 0);
  for (vertex_id v = 0; v < n; v++) size_of[cc.labels[v]]++;
  size_t giant = *std::max_element(size_of.begin(), size_of.end());
  std::printf("\ncomponents: %zu total; giant component holds %.1f%% of "
              "vertices  [%s]\n",
              cc.num_components, 100.0 * giant / n,
              format_seconds(t.next_lap()).c_str());

  // PageRank influencers.
  auto pr = apps::pagerank(g);
  std::vector<vertex_id> order(n);
  for (vertex_id v = 0; v < n; v++) order[v] = v;
  std::partial_sort(order.begin(), order.begin() + top_k, order.end(),
                    [&](vertex_id a, vertex_id b) {
                      return pr.rank[a] > pr.rank[b];
                    });
  std::printf("\ntop-%zu PageRank influencers  [%s, %zu iterations]\n", top_k,
              format_seconds(t.next_lap()).c_str(), pr.num_iterations);
  table_printer influencers({"Vertex", "PageRank", "Degree", "Coreness"});
  auto cores = apps::kcore(g);
  for (size_t i = 0; i < top_k && i < order.size(); i++) {
    vertex_id v = order[i];
    influencers.add_row({std::to_string(v), format_double(pr.rank[v], 6),
                         std::to_string(g.out_degree(v)),
                         std::to_string(cores.coreness[v])});
  }
  influencers.print();

  // Betweenness from the top influencer: who brokers its reach?
  auto bc = apps::bc(g, order[0]);
  vertex_id broker = 0;
  for (vertex_id v = 1; v < n; v++)
    if (bc.dependency[v] > bc.dependency[broker]) broker = v;
  std::printf("\nbetweenness (source %u): top broker is %u (score %.1f)  "
              "[%s]\n",
              order[0], broker, bc.dependency[broker],
              format_seconds(t.next_lap()).c_str());

  // Triangles / clustering.
  auto tri = apps::triangle_count(g);
  // Wedges = sum over v of C(deg v, 2); global clustering = 3T / wedges.
  double wedges = parallel::reduce_add(n, [&](size_t v) {
    double d = static_cast<double>(g.out_degree(static_cast<vertex_id>(v)));
    return d * (d - 1) / 2.0;
  });
  std::printf("\ntriangles: %s; global clustering coefficient %.5f  [%s]\n",
              format_count(tri.num_triangles).c_str(),
              wedges == 0 ? 0.0 : 3.0 * static_cast<double>(tri.num_triangles) / wedges,
              format_seconds(t.next_lap()).c_str());

  // Core decomposition profile.
  std::printf("\nk-core profile (max core %u):\n", cores.max_core);
  std::vector<size_t> per_core(cores.max_core + 1, 0);
  for (vertex_id v = 0; v < n; v++) per_core[cores.coreness[v]]++;
  size_t cumulative = 0;
  for (size_t k = per_core.size(); k-- > 0;) {
    cumulative += per_core[k];
    if (per_core[k] > 0 && (k % 4 == 0 || k + 1 == per_core.size()))
      std::printf("  >= %2zu-core: %s vertices\n", k,
                  format_count(cumulative).c_str());
  }
  return 0;
}
